package workload

import (
	"fmt"
	"time"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/types"
)

// The scenario layer of the workload pipeline. A Scenario names one full
// composition — an open-loop arrival process, a population skew and a
// transaction mix over the contract archetypes — and compiles to the same
// plan→emit→seal engine the era path runs on.

// ScenarioMix weights the action archetypes of a scenario. Weights are
// relative (normalised at compile time); zero disables an archetype and
// its bootstrap contracts.
type ScenarioMix struct {
	// The era archetypes.
	Transfer  float64
	Token     float64
	Wallet    float64
	Crowdsale float64
	Game      float64
	Airdrop   float64
	// CRUD is blurr-style keyed-store traffic (create/read/update/delete
	// with recent-key bias) against CrudRuntime stores.
	CRUD float64
	// Exchange is deposit/withdrawal flow through a small set of
	// exchange hub accounts — the super-vertex pattern of Fig. 2.
	Exchange float64
	// NFTMint is mint traffic against NFTRuntime collections.
	NFTMint float64
}

// total returns the sum of all weights.
func (m ScenarioMix) total() float64 {
	return m.Transfer + m.Token + m.Wallet + m.Crowdsale + m.Game +
		m.Airdrop + m.CRUD + m.Exchange + m.NFTMint
}

// Scenario is a named workload composition.
type Scenario struct {
	Name        string
	Description string

	// Seed makes the composition reproducible; same Seed ⇒ byte-identical
	// record stream.
	Seed int64
	// BlockInterval is the batching grid: arrivals landing in the same
	// interval-wide cell execute in one block (default 1 hour).
	BlockInterval time.Duration

	Arrival    ArrivalSpec
	Population PopulationSpec
	Mix        ScenarioMix

	// NewAccountFrac is the fraction of transfers that fund a brand-new
	// account (population growth).
	NewAccountFrac float64
	// DeploysPerDay paces mid-run contract launches of the mix's active
	// archetypes (new NFT collections mid-rush, new stores, …).
	DeploysPerDay float64
	// MaxAirdropFanout bounds airdrop batch size; defaults to 16.
	MaxAirdropFanout int
	// PAProb is the preferential-attachment probability of the substrate
	// (defaults to 0.7); the Population layer's hot draws sit in front of
	// it.
	PAProb float64
	// ExchangeHubs is the number of hub accounts (default 4, only built
	// when Mix.Exchange > 0).
	ExchangeHubs int
	// BootstrapAccounts seeds the initial user population (default 32).
	BootstrapAccounts int
	// Chain overrides the chain config (defaults as the era path).
	Chain *chain.Config
}

// withDefaults fills zero fields.
func (s Scenario) withDefaults() Scenario {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.BlockInterval <= 0 {
		s.BlockInterval = time.Hour
	}
	s.Arrival = s.Arrival.withDefaults()
	if s.MaxAirdropFanout <= 0 {
		s.MaxAirdropFanout = 16
	}
	if s.PAProb <= 0 {
		s.PAProb = 0.7
	}
	if s.ExchangeHubs <= 0 {
		s.ExchangeHubs = 4
	}
	if s.BootstrapAccounts <= 0 {
		s.BootstrapAccounts = 32
	}
	return s
}

// Validate rejects unrunnable scenarios.
func (s Scenario) Validate() error {
	sc := s.withDefaults()
	if err := sc.Arrival.validate(); err != nil {
		return err
	}
	if sc.Mix.total() <= 0 {
		return fmt.Errorf("workload: scenario %q has an empty mix", s.Name)
	}
	if sc.Population.HotProb < 0 || sc.Population.HotProb > 1 {
		return fmt.Errorf("workload: scenario %q hot probability must be in [0,1], got %v",
			s.Name, sc.Population.HotProb)
	}
	if sc.Population.RecencyBias < 0 || sc.Population.RecencyBias > 1 {
		return fmt.Errorf("workload: scenario %q recency bias must be in [0,1], got %v",
			s.Name, sc.Population.RecencyBias)
	}
	if sc.NewAccountFrac < 0 || sc.NewAccountFrac > 1 {
		return fmt.Errorf("workload: scenario %q new-account fraction must be in [0,1], got %v",
			s.Name, sc.NewAccountFrac)
	}
	return nil
}

// NewScenario builds a generator running the scenario composition: the
// spec's arrival process plans blocks, its mix emits them, and the
// substrate's chain executes them.
func NewScenario(sc Scenario) (*Generator, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	cfg := Config{
		Seed:             sc.Seed,
		BlockInterval:    sc.BlockInterval,
		MaxAirdropFanout: sc.MaxAirdropFanout,
		PAProb:           sc.PAProb,
		Chain:            sc.Chain,
	}.withDefaults()
	cfg.Eras = nil // scenario compositions have no era schedule
	g := newSubstrate(cfg)
	comp := compileScenario(sc)
	g.comp = composition{arrival: newScenarioPlanner(sc.Arrival), scenario: comp}
	if sc.Population.HotProb > 0 {
		g.pop = newPopState(sc.Population)
	}
	if sc.Mix.CRUD > 0 {
		g.crudKeys = make(map[types.Address]uint64)
	}
	// Bootstrap blocks sit just before the arrival window opens.
	g.now = sc.Arrival.Start.Add(-2 * cfg.BlockInterval)
	g.end = sc.Arrival.Start.Add(sc.Arrival.Duration)
	if err := g.genesis(); err != nil {
		return nil, err
	}
	if err := g.scenarioBootstrap(sc); err != nil {
		return nil, err
	}
	return g, nil
}

// scenarioBootstrap funds the starter population, the mix's contract set
// and (when the mix trades through exchanges) the hub accounts.
func (g *Generator) scenarioBootstrap(sc Scenario) error {
	g.beginBlock(g.now)
	for i := 0; i < sc.BootstrapAccounts; i++ {
		a := g.newAddress()
		g.addAccount(a)
		g.appendTx(g.transferTx(g.faucet, a, initialFunding))
	}
	m := sc.Mix
	if m.Token > 0 || m.Crowdsale > 0 {
		for i := 0; i < 2; i++ {
			g.appendTx(g.deployTx(TokenRuntime(), &g.tokens))
		}
	}
	if m.Wallet > 0 {
		for i := 0; i < 2; i++ {
			g.appendTx(g.deployTx(WalletRuntime(), &g.wallets))
		}
	}
	if m.Game > 0 {
		g.appendTx(g.deployTx(GameRuntime(), &g.games))
	}
	if m.Airdrop > 0 {
		g.appendTx(g.deployTx(AirdropRuntime(), &g.airdrops))
	}
	if m.CRUD > 0 {
		for i := 0; i < 2; i++ {
			g.appendTx(g.deployTx(CrudRuntime(), &g.cruds))
		}
	}
	if m.NFTMint > 0 {
		for i := 0; i < 2; i++ {
			g.appendTx(g.deployTx(NFTRuntime(), &g.nfts))
		}
	}
	if m.Exchange > 0 {
		for i := 0; i < sc.ExchangeHubs; i++ {
			hub := g.newAddress()
			g.addAccount(hub)
			g.exchHubs = append(g.exchHubs, hub)
			g.appendTx(g.transferTx(g.faucet, hub, 1<<40))
		}
	}
	if _, _, err := g.seal(); err != nil {
		return err
	}
	// Second bootstrap block: crowdsales referencing the tokens.
	g.beginBlock(g.now)
	if m.Crowdsale > 0 {
		for i := 0; i < 2; i++ {
			owner := g.accounts[g.rng.Intn(len(g.accounts))]
			g.appendTx(g.deployTx(CrowdsaleRuntime(g.tokens[i%len(g.tokens)], owner), &g.crowdsales))
		}
	}
	_, _, err := g.seal()
	return err
}

// scenarioPlanner is the open-loop arrival layer: it pulls arrival
// instants from the thinning sampler and batches each BlockInterval-wide
// grid cell (anchored at the arrival window's start) into one block whose
// plan carries the per-action arrival stamps. Empty cells produce no
// block at all — open-loop histories have gaps where nothing arrived.
type scenarioPlanner struct {
	arr       *arrivalStream
	pending   time.Time
	have      bool
	exhausted bool
	times     []int64 // per-block scratch, reused
}

func newScenarioPlanner(spec ArrivalSpec) *scenarioPlanner {
	return &scenarioPlanner{arr: newArrivalStream(spec)}
}

func (p *scenarioPlanner) plan(g *Generator) (blockPlan, bool) {
	if !p.have {
		t, ok := p.arr.next(g.rng)
		if !ok {
			p.exhausted = true
			return blockPlan{}, false
		}
		p.pending, p.have = t, true
	}
	interval := g.cfg.BlockInterval
	cell := p.pending.Sub(p.arr.spec.Start) / interval
	blockTime := p.arr.spec.Start.Add(cell * interval)
	cellEnd := blockTime.Add(interval)
	p.times = p.times[:0]
	for p.have && p.pending.Before(cellEnd) {
		p.times = append(p.times, p.pending.Unix())
		t, ok := p.arr.next(g.rng)
		if !ok {
			p.have = false
			p.exhausted = true
			break
		}
		p.pending = t
	}
	return blockPlan{time: blockTime, count: len(p.times), times: p.times}, true
}

func (p *scenarioPlanner) advance(g *Generator) {
	if p.have {
		g.now = p.pending
	} else {
		g.now = g.end
	}
}

func (p *scenarioPlanner) done(g *Generator) bool { return p.exhausted && !p.have }

// compiledScenario is the scenario layer's emitter: the normalised mix as
// cumulative thresholds over an action table, plus the deployers of the
// mix's active archetypes for mid-run launches.
type compiledScenario struct {
	spec    Scenario
	cum     []float64
	actions []func(*Generator)
	last    int // index of the last nonzero weight (absorbs rounding)
	deploy  []func(*Generator)
}

func compileScenario(sc Scenario) *compiledScenario {
	c := &compiledScenario{spec: sc}
	total := sc.Mix.total()
	add := func(w float64, act func(*Generator), dep func(*Generator)) {
		prev := 0.0
		if n := len(c.cum); n > 0 {
			prev = c.cum[n-1]
		}
		c.cum = append(c.cum, prev+w/total)
		c.actions = append(c.actions, act)
		if w > 0 {
			c.last = len(c.cum) - 1
			if dep != nil {
				c.deploy = append(c.deploy, dep)
			}
		}
	}
	m := sc.Mix
	add(m.Transfer, func(g *Generator) { g.transferAction(sc.NewAccountFrac) }, nil)
	add(m.Token, (*Generator).tokenAction,
		func(g *Generator) { g.appendTx(g.deployTx(TokenRuntime(), &g.tokens)) })
	add(m.Wallet, (*Generator).walletAction,
		func(g *Generator) { g.appendTx(g.deployTx(WalletRuntime(), &g.wallets)) })
	add(m.Crowdsale, (*Generator).crowdsaleAction, func(g *Generator) {
		owner := g.accounts[g.rng.Intn(len(g.accounts))]
		token := g.tokens[g.rng.Intn(len(g.tokens))]
		g.appendTx(g.deployTx(CrowdsaleRuntime(token, owner), &g.crowdsales))
	})
	add(m.Game, (*Generator).gameAction,
		func(g *Generator) { g.appendTx(g.deployTx(GameRuntime(), &g.games)) })
	add(m.Airdrop, (*Generator).airdropAction,
		func(g *Generator) { g.appendTx(g.deployTx(AirdropRuntime(), &g.airdrops)) })
	add(m.CRUD, (*Generator).crudAction,
		func(g *Generator) { g.appendTx(g.deployTx(CrudRuntime(), &g.cruds)) })
	add(m.Exchange, (*Generator).exchangeAction, nil) // hubs are bootstrap-only
	add(m.NFTMint, (*Generator).nftMintAction,
		func(g *Generator) { g.appendTx(g.deployTx(NFTRuntime(), &g.nfts)) })
	return c
}

// emit implements the emitter seam: paced contract launches plus one mix
// action per arrival, each stamped with its arrival instant.
func (c *compiledScenario) emit(g *Generator, plan blockPlan) {
	if len(c.deploy) > 0 && c.spec.DeploysPerDay > 0 {
		perBlock := c.spec.DeploysPerDay * g.cfg.BlockInterval.Seconds() / 86_400
		if g.rng.Float64() < perBlock {
			c.deploy[g.rng.Intn(len(c.deploy))](g)
		}
	}
	for _, at := range plan.times {
		g.arrivalUnix = at
		c.action(g)
	}
}

// action draws one archetype from the mix.
func (c *compiledScenario) action(g *Generator) {
	r := g.rng.Float64()
	for i, t := range c.cum {
		if r < t || i == c.last {
			c.actions[i](g)
			return
		}
	}
}

// crudAction performs one operation on a keyed store: creates append the
// next key, reads/updates/deletes hit existing keys with recent-key bias.
func (g *Generator) crudAction() {
	sender, topup := g.pickSender(300_000)
	store := g.pickContract(sender, &g.cruds)
	n := g.crudKeys[store]
	r := g.rng.Float64()
	var op, key, val uint64
	switch {
	case n == 0 || r < 0.3: // create
		op, key, val = 0, n, uint64(1+g.rng.Intn(1_000_000))
		g.crudKeys[store] = n + 1
	case r < 0.7: // read
		op, key = 1, g.pickCrudKey(n)
	case r < 0.9: // update
		op, key, val = 0, g.pickCrudKey(n), uint64(1+g.rng.Intn(1_000_000))
	default: // delete
		op, key = 2, g.pickCrudKey(n)
	}
	data := make([]byte, 96)
	ob := evm.WordFromUint64(op).Bytes32()
	kb := evm.WordFromUint64(key).Bytes32()
	vb := evm.WordFromUint64(val).Bytes32()
	copy(data[0:32], ob[:])
	copy(data[32:64], kb[:])
	copy(data[64:96], vb[:])
	g.appendTx(topup)
	g.appendTx(g.noteTx(&chain.Transaction{
		Nonce: g.nonceOf(sender), From: sender, To: &store,
		Data: data, GasLimit: 300_000, GasPrice: 1,
	}))
}

// pickCrudKey draws an existing key with recent-key bias: 80% of accesses
// hit the newest fifth of the keyspace (pebble-bench's recent-block bias).
func (g *Generator) pickCrudKey(n uint64) uint64 {
	span := n
	if g.rng.Float64() < 0.8 {
		span = 1 + n/5
		if span > n {
			span = n
		}
	}
	return n - 1 - uint64(g.rng.Intn(int(span)))
}

// exchangeAction moves value through an exchange hub: deposits (user→hub)
// and withdrawals (hub→recently-active user), the super-vertex traffic of
// Fig. 2's exchange accounts.
func (g *Generator) exchangeAction() {
	hub := g.exchHubs[g.rng.Intn(len(g.exchHubs))]
	value := uint64(1_000 + g.rng.Intn(100_000))
	if g.rng.Float64() < 0.6 { // deposit
		sender, topup := g.pickSender(value + 50_000)
		g.appendTx(topup)
		g.appendTx(g.transferTx(sender, hub, value))
		return
	}
	// Withdrawal; the hub refills its float from the faucet when low.
	to := g.pickTarget(hub)
	if g.avail(hub) < int64(value+50_000) {
		g.appendTx(g.transferTx(g.faucet, hub, 1<<40))
	}
	g.appendTx(g.transferTx(hub, to, value))
}

// nftMintAction mints the next token of a collection to the sender.
func (g *Generator) nftMintAction() {
	sender, topup := g.pickSender(300_000)
	coll := g.pickContract(sender, &g.nfts)
	g.appendTx(topup)
	g.appendTx(g.noteTx(&chain.Transaction{
		Nonce: g.nonceOf(sender), From: sender, To: &coll,
		GasLimit: 300_000, GasPrice: 1,
	}))
}
