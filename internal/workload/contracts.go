package workload

import (
	"ethpart/internal/evm"
	"ethpart/internal/types"
)

// Contract archetypes. Each builder returns *runtime* bytecode for the mini
// EVM; deployment wraps it with evm.DeployWrapper. The archetypes are
// chosen to produce the interaction patterns the paper's graph exhibits:
// pure-storage contracts (token), single-forward contracts (wallet),
// fan-out contracts (airdrop, crowdsale) and stateful recurrent ones (game).

// TokenRuntime is an ERC20-flavoured token: calldata is (to, amount); the
// contract credits balances[to] and debits balances[caller] in storage.
// No internal calls — token transfers are single-vertex contract activity.
func TokenRuntime() []byte {
	a := evm.NewAssembler()
	// balances[to] += amount
	a.Push(0).Op(evm.CALLDATALOAD) // [to]
	a.Op(evm.DUP1)                 // [to, to]
	a.Op(evm.SLOAD)                // [to, bal]
	a.Push(32).Op(evm.CALLDATALOAD)
	a.Op(evm.ADD)   // [to, bal+amt]
	a.Op(evm.SWAP1) // [bal+amt, to]
	a.Op(evm.SSTORE)
	// balances[caller] -= amount
	a.Op(evm.CALLER).Op(evm.DUP1).Op(evm.SLOAD) // [caller, bal]
	a.Push(32).Op(evm.CALLDATALOAD)             // [caller, bal, amt]
	a.Op(evm.SWAP1)                             // [caller, amt, bal]
	a.Op(evm.SUB)                               // [caller, bal-amt]
	a.Op(evm.SWAP1)                             // [bal-amt, caller]
	a.Op(evm.SSTORE)
	a.Op(evm.STOP)
	return a.MustBytes()
}

// WalletRuntime forwards the call value to the address in calldata word 0 —
// one internal call per activation, the hot-wallet pattern.
func WalletRuntime() []byte {
	a := evm.NewAssembler()
	a.Push(0).Push(0).Push(0).Push(0) // outSize outOff inSize inOff
	a.Op(evm.CALLVALUE)
	a.Push(0).Op(evm.CALLDATALOAD) // to
	a.Push(40_000)                 // gas
	a.Op(evm.CALL).Op(evm.POP)
	a.Op(evm.STOP)
	return a.MustBytes()
}

// CrowdsaleRuntime sells tokens: it calls the token contract to credit the
// buyer, then forwards the raised value to the owner — two internal calls,
// one to a contract and one to an account, the ICO pattern of 2017.
func CrowdsaleRuntime(token, owner types.Address) []byte {
	a := evm.NewAssembler()
	// memory[0..32) = caller (token transfer recipient)
	a.Op(evm.CALLER).Push(0).Op(evm.MSTORE)
	// memory[32..64) = callvalue (token amount)
	a.Op(evm.CALLVALUE).Push(32).Op(evm.MSTORE)
	// CALL token(inOff=0, inSize=64, value=0)
	a.Push(0).Push(0) // outSize outOff
	a.Push(64).Push(0)
	a.Push(0) // value
	a.PushAddress(token)
	a.Push(60_000)
	a.Op(evm.CALL).Op(evm.POP)
	// CALL owner with the raised value.
	a.Push(0).Push(0).Push(0).Push(0)
	a.Op(evm.CALLVALUE)
	a.PushAddress(owner)
	a.Push(40_000)
	a.Op(evm.CALL).Op(evm.POP)
	a.Op(evm.STOP)
	return a.MustBytes()
}

// GameRuntime is a stateful game: every move bumps a play counter and
// records the caller; every 8th move pays 1 wei back to the caller — an
// occasional internal transfer, the gambling-dapp pattern.
func GameRuntime() []byte {
	a := evm.NewAssembler()
	// counter = SLOAD(0) + 1; SSTORE(0, counter)
	a.Push(0).Op(evm.SLOAD)
	a.Push(1).Op(evm.ADD) // [c]
	a.Op(evm.DUP1)        // [c, c]
	a.Push(0).Op(evm.SSTORE)
	// record the caller at slot c: SSTORE(c, caller)
	a.Op(evm.CALLER) // [c, caller]
	a.Op(evm.SWAP1)  // [caller, c]
	a.Op(evm.SSTORE)
	// if counter % 8 == 0: pay caller 1 wei
	a.Push(0).Op(evm.SLOAD) // [counter]
	a.Push(8).Op(evm.SWAP1).Op(evm.MOD)
	a.Op(evm.ISZERO)
	a.JumpITo("payout")
	a.Op(evm.STOP)
	a.Label("payout")
	a.Push(0).Push(0).Push(0).Push(0)
	a.Push(1) // 1 wei
	a.Op(evm.CALLER)
	a.Push(40_000)
	a.Op(evm.CALL).Op(evm.POP)
	a.Op(evm.STOP)
	return a.MustBytes()
}

// AirdropRuntime distributes value: calldata is (n, addr1, …, addrN); the
// contract performs one zero-value call to every listed address — the
// fan-out pattern of Fig. 2's contract 9703 and of 2017 airdrops.
func AirdropRuntime() []byte {
	a := evm.NewAssembler()
	a.Push(0).Op(evm.CALLDATALOAD) // [n]
	a.Push(0)                      // [n, i]
	a.Label("loop")
	a.Op(evm.DUP1 + 1) // DUP2: [n, i, n]
	a.Op(evm.DUP1 + 1) // DUP2: [n, i, n, i]
	a.Op(evm.EQ)       // [n, i, i==n]
	a.JumpITo("end")
	// addr = calldata[32 + i*32]
	a.Op(evm.DUP1)                            // [n, i, i]
	a.Push(32).Op(evm.MUL)                    // [n, i, i*32]
	a.Push(32).Op(evm.ADD)                    // [n, i, 32+i*32]
	a.Op(evm.CALLDATALOAD)                    // [n, i, addr]
	a.Push(0).Push(0).Push(0).Push(0).Push(0) // outSize outOff inSize inOff value=0
	a.Op(evm.DUP1 + 5)                        // DUP6: addr
	a.Push(25_000)                            // gas
	a.Op(evm.CALL).Op(evm.POP)                // [n, i, addr]
	a.Op(evm.POP)                             // [n, i]
	a.Push(1).Op(evm.ADD)                     // [n, i+1]
	a.JumpTo("loop")
	a.Label("end")
	a.Op(evm.POP).Op(evm.POP).Op(evm.STOP)
	return a.MustBytes()
}

// CrudRuntime is a keyed store for the scenario layer's CRUD mixes
// (blurr-style percentage workloads, SNIPPETS.md §1): calldata is
// (op, key, value) with op 0 = write (create/update), 1 = read,
// 2 = delete. Pure storage activity with a footprint that grows with the
// live key count — the state-heavy dapp pattern.
func CrudRuntime() []byte {
	a := evm.NewAssembler()
	a.Push(0).Op(evm.CALLDATALOAD) // [op]
	a.Op(evm.DUP1)                 // [op, op]
	a.Push(1).Op(evm.EQ)           // [op, op==1]
	a.JumpITo("read")
	a.Push(2).Op(evm.EQ) // [op==2]
	a.JumpITo("delete")
	// write: SSTORE(key, value)
	a.Push(64).Op(evm.CALLDATALOAD) // [value]
	a.Push(32).Op(evm.CALLDATALOAD) // [value, key]
	a.Op(evm.SSTORE)
	a.Op(evm.STOP)
	a.Label("read") // [op]
	a.Op(evm.POP)
	a.Push(32).Op(evm.CALLDATALOAD)
	a.Op(evm.SLOAD).Op(evm.POP)
	a.Op(evm.STOP)
	a.Label("delete") // []
	a.Push(0)
	a.Push(32).Op(evm.CALLDATALOAD) // [0, key]
	a.Op(evm.SSTORE)
	a.Op(evm.STOP)
	return a.MustBytes()
}

// NFTRuntime is a mint-only collection: every call mints the next token to
// the caller (bump the supply counter, record the owner) — the mint-rush
// pattern whose storage grows one slot per interaction.
func NFTRuntime() []byte {
	a := evm.NewAssembler()
	// supply = SLOAD(0) + 1; SSTORE(0, supply)
	a.Push(0).Op(evm.SLOAD)
	a.Push(1).Op(evm.ADD) // [supply]
	a.Op(evm.DUP1)        // [supply, supply]
	a.Push(0).Op(evm.SSTORE)
	// owners[supply] = caller
	a.Op(evm.CALLER) // [supply, caller]
	a.Op(evm.SWAP1)  // [caller, supply]
	a.Op(evm.SSTORE)
	a.Op(evm.STOP)
	return a.MustBytes()
}
