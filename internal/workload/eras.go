// Package workload generates the synthetic Ethereum history the experiments
// run on. It stands in for the paper's real blockchain trace (Aug 2015 –
// Dec 2017): the generator drives the chain substrate with transactions
// whose statistical shape follows the paper's Fig. 1 narrative — early
// exponential growth, the Sep/Oct-2016 attack that minted an order of
// magnitude of dummy accounts, and the superlinear ICO-era growth of 2017 —
// with preferential-attachment targeting so the resulting graph has the hub
// skew real blockchains show.
package workload

import (
	"math"
	"time"
)

// EraKind labels the growth regime of an era.
type EraKind uint8

// Era growth regimes.
const (
	// GrowthExponential interpolates the daily rate exponentially between
	// the era's endpoints — the pre-attack regime of Fig. 1.
	GrowthExponential EraKind = iota + 1
	// GrowthLinear interpolates linearly — the paper's "superlinear over
	// time" post-attack regime (linear in rate ⇒ superlinear in total).
	GrowthLinear
)

// TxMix is the probability of each transaction archetype, summing to 1
// together with DummyFrac (dummy-account creation takes priority).
type TxMix struct {
	Transfer  float64 // plain account→account transfer
	Token     float64 // ERC20-style token transfer (storage writes)
	Wallet    float64 // wallet contract forwarding value (1 internal call)
	Crowdsale float64 // crowdsale buy (2 internal calls: token + owner)
	Game      float64 // game move (occasional payout call)
	Airdrop   float64 // batch distribution (N internal calls, Fig. 2 style)
}

// Era is one segment of the synthetic history.
type Era struct {
	Name  string
	Start time.Time
	End   time.Time
	// TxPerDayStart/End are the daily transaction rates at the era's
	// boundaries (at Scale = 1), interpolated according to Kind.
	TxPerDayStart float64
	TxPerDayEnd   float64
	Kind          EraKind
	// NewAccountFrac is the probability that a transfer goes to a
	// brand-new account (network growth).
	NewAccountFrac float64
	// DummyFrac is the probability that a transaction only mints a
	// throwaway account that is never touched again — the attack's
	// signature behaviour.
	DummyFrac float64
	// DeploysPerDay is the daily rate of new contract deployments.
	DeploysPerDay float64
	Mix           TxMix
}

// date is a helper for the era table.
func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// DefaultEras returns the five-era schedule modelled on the paper's Fig. 1:
// Frontier and Homestead growth, the autumn-2016 attack, the post-fork
// recovery, and the 2017 boom. Rates are daily transaction counts at
// Scale = 1; experiments typically run at Scale ≈ 0.01–0.05 to stay
// laptop-sized while keeping every regime's relative magnitude.
func DefaultEras() []Era {
	return []Era{
		{
			Name:          "frontier",
			Start:         date(2015, time.August, 1),
			End:           date(2016, time.March, 14),
			TxPerDayStart: 1_500, TxPerDayEnd: 7_000,
			Kind:           GrowthExponential,
			NewAccountFrac: 0.30,
			DeploysPerDay:  3,
			Mix:            TxMix{Transfer: 0.88, Token: 0.04, Wallet: 0.04, Crowdsale: 0.01, Game: 0.02, Airdrop: 0.01},
		},
		{
			Name:          "homestead",
			Start:         date(2016, time.March, 14),
			End:           date(2016, time.September, 18),
			TxPerDayStart: 7_000, TxPerDayEnd: 25_000,
			Kind:           GrowthExponential,
			NewAccountFrac: 0.25,
			DeploysPerDay:  8,
			Mix:            TxMix{Transfer: 0.78, Token: 0.08, Wallet: 0.06, Crowdsale: 0.03, Game: 0.03, Airdrop: 0.02},
		},
		{
			Name:          "attack",
			Start:         date(2016, time.September, 18),
			End:           date(2016, time.October, 25),
			TxPerDayStart: 180_000, TxPerDayEnd: 220_000,
			Kind:           GrowthLinear,
			NewAccountFrac: 0.10,
			DummyFrac:      0.85,
			DeploysPerDay:  6,
			Mix:            TxMix{Transfer: 0.10, Token: 0.02, Wallet: 0.01, Crowdsale: 0.005, Game: 0.005, Airdrop: 0.01},
		},
		{
			Name:          "recovery",
			Start:         date(2016, time.October, 25),
			End:           date(2017, time.March, 1),
			TxPerDayStart: 30_000, TxPerDayEnd: 45_000,
			Kind:           GrowthLinear,
			NewAccountFrac: 0.20,
			DeploysPerDay:  12,
			Mix:            TxMix{Transfer: 0.70, Token: 0.12, Wallet: 0.07, Crowdsale: 0.04, Game: 0.04, Airdrop: 0.03},
		},
		{
			Name:          "boom",
			Start:         date(2017, time.March, 1),
			End:           date(2018, time.January, 1),
			TxPerDayStart: 45_000, TxPerDayEnd: 400_000,
			Kind:           GrowthExponential,
			NewAccountFrac: 0.22,
			DeploysPerDay:  40,
			Mix:            TxMix{Transfer: 0.48, Token: 0.26, Wallet: 0.08, Crowdsale: 0.10, Game: 0.04, Airdrop: 0.04},
		},
	}
}

// rateAt interpolates the era's daily transaction rate at time t.
func (e *Era) rateAt(t time.Time) float64 {
	span := e.End.Sub(e.Start).Seconds()
	if span <= 0 {
		return e.TxPerDayStart
	}
	frac := t.Sub(e.Start).Seconds() / span
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	switch e.Kind {
	case GrowthExponential:
		// r(t) = r0 * (r1/r0)^frac
		ratio := e.TxPerDayEnd / e.TxPerDayStart
		return e.TxPerDayStart * math.Pow(ratio, frac)
	default:
		return e.TxPerDayStart + (e.TxPerDayEnd-e.TxPerDayStart)*frac
	}
}

// eraAt finds the era containing t, or nil when t is outside the schedule.
func eraAt(eras []Era, t time.Time) *Era {
	for i := range eras {
		if !t.Before(eras[i].Start) && t.Before(eras[i].End) {
			return &eras[i]
		}
	}
	return nil
}
