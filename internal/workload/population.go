package workload

import (
	"math/rand"

	"ethpart/internal/types"
)

// The population layer of the workload pipeline. The substrate already
// grows a heavy-tailed population through preferential attachment (and
// optionally communities); PopulationSpec layers hot-account skew with
// recency bias on top: a bounded ring of the most recently active
// addresses, and a configurable fraction of interaction targets drawn
// from it, biased toward its newest entries. This is the pebble-bench
// recent-block-bias idiom (SNIPPETS.md §3) applied to accounts: real
// serving load concentrates on whatever was hot in the last few minutes,
// which is exactly the pressure the decayed interaction graph is supposed
// to track.

// PopulationSpec parameterises hot-account targeting for a scenario.
// The zero value disables the layer (pure preferential attachment).
type PopulationSpec struct {
	// HotProb is the probability an interaction target is drawn from the
	// recently-active ring instead of the preferential-attachment pools.
	HotProb float64
	// HotSet is the ring capacity (default 256).
	HotSet int
	// RecencyBias is the probability a hot draw is confined to the newest
	// fifth of the ring (default 0 = uniform over the ring; pebble-bench's
	// PoS workloads use 0.8).
	RecencyBias float64
}

// withDefaults fills zero fields.
func (p PopulationSpec) withDefaults() PopulationSpec {
	if p.HotSet <= 0 {
		p.HotSet = 256
	}
	return p
}

// popState is the recency ring: a fixed-capacity circular buffer of the
// most recently active addresses, newest at head−1. Duplicates are kept on
// purpose — an address active k times in the window occupies k slots and
// is k times as likely to be drawn.
type popState struct {
	spec PopulationSpec
	ring []types.Address
	head int
	size int
}

func newPopState(spec PopulationSpec) *popState {
	spec = spec.withDefaults()
	return &popState{spec: spec, ring: make([]types.Address, spec.HotSet)}
}

// note records addr as just-active. Called from the pool-update path after
// every executed interaction; consumes no randomness.
func (p *popState) note(addr types.Address) {
	p.ring[p.head] = addr
	p.head = (p.head + 1) % len(p.ring)
	if p.size < len(p.ring) {
		p.size++
	}
}

// draw returns a hot target with probability HotProb: a uniform ring
// member, or — with probability RecencyBias — a member of the newest fifth.
func (p *popState) draw(rng *rand.Rand) (types.Address, bool) {
	if p.size == 0 || rng.Float64() >= p.spec.HotProb {
		return types.Address{}, false
	}
	span := p.size
	if p.spec.RecencyBias > 0 && rng.Float64() < p.spec.RecencyBias {
		span = 1 + p.size/5
	}
	back := rng.Intn(span)
	idx := p.head - 1 - back
	if idx < 0 {
		idx += len(p.ring)
	}
	return p.ring[idx], true
}
