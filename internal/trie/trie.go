// Package trie implements a binary Merkle trie used for state and
// transaction commitments in block headers. Keys are hashed to fixed-length
// paths, values are arbitrary bytes, and the root hash authenticates the
// entire key/value set — the role Ethereum's Merkle-Patricia trie plays in
// its block headers.
//
// The trie supports insertion, lookup, deletion, root computation with
// per-node hash caching, and Merkle proofs with standalone verification.
package trie

import (
	"bytes"

	"ethpart/internal/types"
)

// node is either a *leaf or a *branch.
type node interface {
	// hash returns the node's Merkle hash, computing and caching it on
	// first use.
	hash() types.Hash
}

// Domain-separation tags so leaves can never be confused with branches.
var (
	leafTag   = []byte{0x00}
	branchTag = []byte{0x01}
)

// leaf holds the hashed key path and the value.
type leaf struct {
	path   types.Hash // sha256 of the user key
	value  []byte
	cached types.Hash
	dirty  bool
}

func newLeaf(path types.Hash, value []byte) *leaf {
	return &leaf{path: path, value: value, dirty: true}
}

func (l *leaf) hash() types.Hash {
	if l.dirty {
		l.cached = types.HashConcat(leafTag, l.path[:], l.value)
		l.dirty = false
	}
	return l.cached
}

// branch has two children indexed by the bit at its depth.
type branch struct {
	child  [2]node
	cached types.Hash
	dirty  bool
}

func (b *branch) hash() types.Hash {
	if b.dirty {
		var lh, rh types.Hash
		if b.child[0] != nil {
			lh = b.child[0].hash()
		}
		if b.child[1] != nil {
			rh = b.child[1].hash()
		}
		b.cached = types.HashConcat(branchTag, lh[:], rh[:])
		b.dirty = false
	}
	return b.cached
}

// Trie is a binary Merkle trie. The zero value is an empty trie ready to
// use. Trie is not safe for concurrent use.
type Trie struct {
	root node
	size int
}

// New returns an empty trie.
func New() *Trie { return &Trie{} }

// Len returns the number of keys in the trie.
func (t *Trie) Len() int { return t.size }

// pathBit returns bit `depth` of the path, MSB-first.
func pathBit(p types.Hash, depth int) int {
	return int(p[depth/8]>>(7-uint(depth)%8)) & 1
}

// Put inserts or updates key with value. An empty value is stored as-is;
// use Delete to remove keys.
func (t *Trie) Put(key, value []byte) {
	path := types.HashData(key)
	v := make([]byte, len(value))
	copy(v, value)
	var created bool
	t.root, created = insert(t.root, path, v, 0)
	if created {
		t.size++
	}
}

// insert returns the new subtree root and whether a new key was created.
func insert(n node, path types.Hash, value []byte, depth int) (node, bool) {
	switch n := n.(type) {
	case nil:
		return newLeaf(path, value), true
	case *leaf:
		if n.path == path {
			n.value = value
			n.dirty = true
			return n, false
		}
		// Split: create branches until the two paths diverge.
		b := &branch{dirty: true}
		top := b
		d := depth
		for pathBit(n.path, d) == pathBit(path, d) {
			nb := &branch{dirty: true}
			b.child[pathBit(path, d)] = nb
			b = nb
			d++
		}
		b.child[pathBit(n.path, d)] = n
		b.child[pathBit(path, d)] = newLeaf(path, value)
		return top, true
	case *branch:
		bit := pathBit(path, depth)
		child, created := insert(n.child[bit], path, value, depth+1)
		n.child[bit] = child
		n.dirty = true
		return n, created
	default:
		// Unreachable: node has exactly two implementations.
		return n, false
	}
}

// Get returns the value stored at key.
func (t *Trie) Get(key []byte) ([]byte, bool) {
	path := types.HashData(key)
	n := t.root
	depth := 0
	for n != nil {
		switch cur := n.(type) {
		case *leaf:
			if cur.path == path {
				return cur.value, true
			}
			return nil, false
		case *branch:
			n = cur.child[pathBit(path, depth)]
			depth++
		}
	}
	return nil, false
}

// Delete removes key, reporting whether it was present.
func (t *Trie) Delete(key []byte) bool {
	path := types.HashData(key)
	root, removed := remove(t.root, path, 0)
	if removed {
		t.root = root
		t.size--
	}
	return removed
}

// remove returns the new subtree root and whether the key was found.
// Single-child branches left by a removal are collapsed so that the trie
// shape (and therefore the root hash) is canonical for the key set.
func remove(n node, path types.Hash, depth int) (node, bool) {
	switch n := n.(type) {
	case nil:
		return nil, false
	case *leaf:
		if n.path == path {
			return nil, true
		}
		return n, false
	case *branch:
		bit := pathBit(path, depth)
		child, removed := remove(n.child[bit], path, depth+1)
		if !removed {
			return n, false
		}
		n.child[bit] = child
		n.dirty = true
		// Collapse so that the shape stays canonical for the key set: a
		// branch whose only child is a leaf lifts the leaf up; the
		// recursion propagates the lift through whole prefix chains.
		var only node
		switch {
		case n.child[0] == nil && n.child[1] == nil:
			return nil, true
		case n.child[0] == nil:
			only = n.child[1]
		case n.child[1] == nil:
			only = n.child[0]
		default:
			return n, true
		}
		if lf, ok := only.(*leaf); ok {
			return lf, true
		}
		return n, true
	default:
		return n, false
	}
}

// Root returns the Merkle root. The empty trie has a zero root.
func (t *Trie) Root() types.Hash {
	if t.root == nil {
		return types.Hash{}
	}
	return t.root.hash()
}

// ProofStep is one level of a Merkle proof: the sibling hash at a branch and
// which side the proven path took.
type ProofStep struct {
	Sibling types.Hash
	// Bit is the direction the path took at this level (0 left, 1 right).
	Bit int
}

// Prove returns the value at key and the Merkle proof from the leaf to the
// root. ok is false when the key is absent (no non-membership proofs).
func (t *Trie) Prove(key []byte) (value []byte, proof []ProofStep, ok bool) {
	path := types.HashData(key)
	n := t.root
	depth := 0
	for n != nil {
		switch cur := n.(type) {
		case *leaf:
			if cur.path == path {
				return cur.value, proof, true
			}
			return nil, nil, false
		case *branch:
			bit := pathBit(path, depth)
			var sib types.Hash
			if s := cur.child[1-bit]; s != nil {
				sib = s.hash()
			}
			proof = append(proof, ProofStep{Sibling: sib, Bit: bit})
			n = cur.child[bit]
			depth++
		}
	}
	return nil, nil, false
}

// Verify checks a Merkle proof produced by Prove against root.
func Verify(root types.Hash, key, value []byte, proof []ProofStep) bool {
	path := types.HashData(key)
	h := types.HashConcat(leafTag, path[:], value)
	for i := len(proof) - 1; i >= 0; i-- {
		step := proof[i]
		if step.Bit == 0 {
			h = types.HashConcat(branchTag, h[:], step.Sibling[:])
		} else {
			h = types.HashConcat(branchTag, step.Sibling[:], h[:])
		}
	}
	return h == root
}

// Equal reports whether two tries hold the same key set with the same
// values, by comparing roots.
func Equal(a, b *Trie) bool {
	return bytes.Equal(rootBytes(a), rootBytes(b))
}

func rootBytes(t *Trie) []byte {
	r := t.Root()
	return r[:]
}
