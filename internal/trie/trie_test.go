package trie

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ethpart/internal/types"
)

func TestEmptyTrie(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Errorf("Len = %d, want 0", tr.Len())
	}
	if !tr.Root().IsZero() {
		t.Errorf("empty root = %v, want zero", tr.Root())
	}
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Error("Get on empty trie must miss")
	}
	if tr.Delete([]byte("missing")) {
		t.Error("Delete on empty trie must report false")
	}
}

func TestPutGet(t *testing.T) {
	tr := New()
	tr.Put([]byte("a"), []byte("1"))
	tr.Put([]byte("b"), []byte("2"))
	tr.Put([]byte("c"), []byte("3"))
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		got, ok := tr.Get([]byte(k))
		if !ok || string(got) != want {
			t.Errorf("Get(%q) = %q, %v; want %q", k, got, ok, want)
		}
	}
	if _, ok := tr.Get([]byte("d")); ok {
		t.Error("Get of absent key must miss")
	}
}

func TestPutOverwrite(t *testing.T) {
	tr := New()
	tr.Put([]byte("k"), []byte("v1"))
	r1 := tr.Root()
	tr.Put([]byte("k"), []byte("v2"))
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", tr.Len())
	}
	got, _ := tr.Get([]byte("k"))
	if string(got) != "v2" {
		t.Errorf("Get = %q, want v2", got)
	}
	if tr.Root() == r1 {
		t.Error("root must change when a value changes")
	}
}

func TestPutCopiesValue(t *testing.T) {
	tr := New()
	v := []byte("mutable")
	tr.Put([]byte("k"), v)
	v[0] = 'X'
	got, _ := tr.Get([]byte("k"))
	if string(got) != "mutable" {
		t.Errorf("stored value aliased caller slice: %q", got)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	keys := []string{"alpha", "beta", "gamma", "delta"}
	for i, k := range keys {
		tr.Put([]byte(k), []byte{byte(i)})
	}
	if !tr.Delete([]byte("beta")) {
		t.Fatal("Delete(beta) must succeed")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if _, ok := tr.Get([]byte("beta")); ok {
		t.Error("deleted key still present")
	}
	for _, k := range []string{"alpha", "gamma", "delta"} {
		if _, ok := tr.Get([]byte(k)); !ok {
			t.Errorf("Delete removed unrelated key %q", k)
		}
	}
}

func TestRootDeterministicAcrossInsertOrder(t *testing.T) {
	keys := []string{"one", "two", "three", "four", "five", "six"}
	build := func(order []int) types.Hash {
		tr := New()
		for _, i := range order {
			tr.Put([]byte(keys[i]), []byte(keys[i]+"-value"))
		}
		return tr.Root()
	}
	want := build([]int{0, 1, 2, 3, 4, 5})
	got := build([]int{5, 3, 1, 0, 4, 2})
	if want != got {
		t.Error("root must be independent of insertion order")
	}
}

func TestDeleteRestoresRoot(t *testing.T) {
	tr := New()
	tr.Put([]byte("a"), []byte("1"))
	tr.Put([]byte("b"), []byte("2"))
	before := tr.Root()

	tr.Put([]byte("c"), []byte("3"))
	if tr.Root() == before {
		t.Fatal("adding a key must change the root")
	}
	if !tr.Delete([]byte("c")) {
		t.Fatal("delete failed")
	}
	if tr.Root() != before {
		t.Error("deleting the added key must restore the canonical root")
	}
}

func TestProveVerify(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}
	root := tr.Root()
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		val, proof, ok := tr.Prove(key)
		if !ok {
			t.Fatalf("Prove(%s) failed", key)
		}
		if !Verify(root, key, val, proof) {
			t.Fatalf("proof for %s does not verify", key)
		}
		// A tampered value must not verify.
		if Verify(root, key, append([]byte("x"), val...), proof) {
			t.Fatalf("tampered proof for %s verified", key)
		}
	}
	if _, _, ok := tr.Prove([]byte("absent")); ok {
		t.Error("Prove of absent key must fail")
	}
}

func TestVerifyWrongRootFails(t *testing.T) {
	tr := New()
	tr.Put([]byte("k"), []byte("v"))
	val, proof, _ := tr.Prove([]byte("k"))
	var wrong types.Hash
	wrong[0] = 1
	if Verify(wrong, []byte("k"), val, proof) {
		t.Error("proof verified against wrong root")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(), New()
	a.Put([]byte("x"), []byte("1"))
	b.Put([]byte("x"), []byte("1"))
	if !Equal(a, b) {
		t.Error("identical tries must be Equal")
	}
	b.Put([]byte("y"), []byte("2"))
	if Equal(a, b) {
		t.Error("different tries must not be Equal")
	}
}

func TestPropertyModelConformance(t *testing.T) {
	// Property: after any sequence of Put/Delete operations the trie agrees
	// with a map model, and the root matches a fresh trie built from the
	// model (canonical shape).
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := int(opsRaw%100) + 5
		tr := New()
		model := map[string]string{}
		for i := 0; i < ops; i++ {
			k := fmt.Sprintf("k%d", rng.Intn(20))
			switch rng.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", rng.Intn(1000))
				tr.Put([]byte(k), []byte(v))
				model[k] = v
			case 2:
				got := tr.Delete([]byte(k))
				_, want := model[k]
				if got != want {
					return false
				}
				delete(model, k)
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := tr.Get([]byte(k))
			if !ok || string(got) != v {
				return false
			}
		}
		fresh := New()
		for k, v := range model {
			fresh.Put([]byte(k), []byte(v))
		}
		return tr.Root() == fresh.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyProofsVerify(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		tr := New()
		keys := make([][]byte, n)
		for i := 0; i < n; i++ {
			keys[i] = []byte(fmt.Sprintf("key-%d-%d", rng.Intn(1000), i))
			tr.Put(keys[i], []byte(fmt.Sprintf("val-%d", i)))
		}
		root := tr.Root()
		for _, k := range keys {
			v, proof, ok := tr.Prove(k)
			if !ok || !Verify(root, k, v, proof) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTriePut(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("value"))
	}
}

func BenchmarkTrieRootAfterUpdates(b *testing.B) {
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("value"))
	}
	tr.Root() // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%d", i%10000)), []byte{byte(i)})
		tr.Root()
	}
}
