// Package dirserve is the networked directory serving tier: it puts the
// in-process placement directory (internal/directory) behind real sockets
// so more than one machine can answer "which shard owns account X?".
//
// Three parts, all speaking one length-prefixed binary protocol over
// stdlib net (TCP; no third-party dependencies):
//
//   - Server exposes snapshot-pinned batch lookups: a batch is answered
//     from exactly one snapshot, every response carries the serving epoch,
//     and a client whose pinned epoch aged out of the journal re-pins
//     through the journal-backed Resolve path with the staleness flag
//     propagated on the wire.
//   - Fanout is a directory.Committer that ships every committed batch —
//     including resize batches carrying a shard-count change — to N
//     replica processes, tagged with the primary's epoch number. A Replica
//     applies them idempotently by epoch (duplicates are dropped,
//     reordered arrivals are buffered until contiguous), so at-least-once,
//     out-of-order delivery converges byte-identically and readers can pin
//     "epoch ≥ e" against any replica.
//   - Promotion-on-access: a lookup that hits the cold tier pushes the
//     vertex into a bounded lock-free MPSC hint ring
//     (directory.HintRing); replica-side hints ride home on apply acks,
//     and the publisher drains the ring into each commit's Promote lane —
//     no write lock ever appears on the read path.
//
// Wire format: every frame is a big-endian uint32 payload length followed
// by the payload; the payload's first byte is the message type. Integers
// are big-endian, vertex IDs uint64, shards int32 (-1 = unmapped). See
// DESIGN.md §15 for the field-by-field layout.
package dirserve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"ethpart/internal/directory"
	"ethpart/internal/graph"
)

// Message types.
const (
	msgLookup     byte = 1 // client → server: batch lookup
	msgLookupResp byte = 2
	msgApply      byte = 3 // fan-out → replica: apply one committed batch
	msgApplyResp  byte = 4
	msgStats      byte = 5 // applied-epoch probe
	msgStatsResp  byte = 6
)

// Lookup response status.
const (
	statusOK byte = 0
	// statusEvicted: the exact-pinned epoch aged out of the journal; the
	// client must re-pin through the resolve path.
	statusEvicted byte = 1
	// statusBehind: this server has not reached the requested epoch yet
	// (a lagging replica); the client should try another server.
	statusBehind byte = 2
)

// lookupExact flags an exact journal pin; without it the server resolves:
// the pinned epoch's journaled snapshot if retained, else the newest view
// with the stale flag set.
const lookupExact byte = 1

// maxFrame bounds a frame payload; a length prefix beyond it poisons the
// connection (protects against garbage peers allocating gigabytes).
const maxFrame = 1 << 26

func newReader(c net.Conn) *bufio.Reader { return bufio.NewReaderSize(c, 1<<16) }
func newWriter(c net.Conn) *bufio.Writer { return bufio.NewWriterSize(c, 1<<16) }

func writeFrame(w *bufio.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads one frame payload, reusing buf when it fits.
func readFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("dirserve: frame of %d bytes exceeds limit", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Append-style encoders.

func appendU32(p []byte, v uint32) []byte {
	return append(p, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(p []byte, v uint64) []byte {
	return append(p, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// appendBatch encodes a directory.Batch.
func appendBatch(p []byte, b directory.Batch) []byte {
	p = appendU32(p, uint32(int32(b.Shards)))
	p = appendU32(p, uint32(len(b.Set)))
	for _, m := range b.Set {
		p = appendU64(p, uint64(m.V))
		p = appendU32(p, uint32(int32(m.To)))
	}
	p = appendU32(p, uint32(len(b.SetCold)))
	for _, m := range b.SetCold {
		p = appendU64(p, uint64(m.V))
		p = appendU32(p, uint32(int32(m.To)))
	}
	p = appendU32(p, uint32(len(b.Retire)))
	for _, v := range b.Retire {
		p = appendU64(p, uint64(v))
	}
	p = appendU32(p, uint32(len(b.Promote)))
	for _, v := range b.Promote {
		p = appendU64(p, uint64(v))
	}
	return p
}

// cursor is a bounds-checked big-endian reader over a frame payload; the
// first decode error sticks and every later read returns zero.
type cursor struct {
	p   []byte
	err error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("dirserve: truncated frame")
	}
}

func (c *cursor) u8() byte {
	if c.err != nil || len(c.p) < 1 {
		c.fail()
		return 0
	}
	v := c.p[0]
	c.p = c.p[1:]
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil || len(c.p) < 4 {
		c.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(c.p)
	c.p = c.p[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || len(c.p) < 8 {
		c.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(c.p)
	c.p = c.p[8:]
	return v
}

// count reads a collection length and sanity-checks it against the bytes
// remaining (each element needs at least elem bytes), so a corrupt length
// cannot force a giant allocation.
func (c *cursor) count(elem int) int {
	n := int(c.u32())
	if c.err == nil && n*elem > len(c.p) {
		c.fail()
		return 0
	}
	return n
}

// decodeBatch decodes what appendBatch wrote.
func (c *cursor) decodeBatch() directory.Batch {
	var b directory.Batch
	b.Shards = int(int32(c.u32()))
	if n := c.count(12); n > 0 {
		b.Set = make([]directory.Move, n)
		for i := range b.Set {
			b.Set[i] = directory.Move{V: graph.VertexID(c.u64()), To: int(int32(c.u32()))}
		}
	}
	if n := c.count(12); n > 0 {
		b.SetCold = make([]directory.Move, n)
		for i := range b.SetCold {
			b.SetCold[i] = directory.Move{V: graph.VertexID(c.u64()), To: int(int32(c.u32()))}
		}
	}
	if n := c.count(8); n > 0 {
		b.Retire = make([]graph.VertexID, n)
		for i := range b.Retire {
			b.Retire[i] = graph.VertexID(c.u64())
		}
	}
	if n := c.count(8); n > 0 {
		b.Promote = make([]graph.VertexID, n)
		for i := range b.Promote {
			b.Promote[i] = graph.VertexID(c.u64())
		}
	}
	return b
}
