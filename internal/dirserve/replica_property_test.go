package dirserve

import (
	"math/rand"
	"sync"
	"testing"

	"ethpart/internal/directory"
	"ethpart/internal/graph"
)

// genCommitStream produces a deterministic mixed commit stream (placements,
// moves, retirements, promotions, resizes) and applies it to a fresh oracle
// directory, returning the stream and the oracle's final view.
func genCommitStream(seed int64, n int) ([]shipment, *directory.Directory) {
	rng := rand.New(rand.NewSource(seed))
	oracle := directory.New(directory.Config{})
	shards := 2
	var retired []graph.VertexID
	stream := make([]shipment, 0, n)
	for e := 1; e <= n; e++ {
		var b directory.Batch
		wave := rng.Intn(4) == 0
		if e == 1 || rng.Intn(16) == 0 {
			shards += rng.Intn(3)
			b.Shards = shards
		}
		for i, k := 0, rng.Intn(6); i < k; i++ {
			b.Set = append(b.Set, directory.Move{
				V: graph.VertexID(rng.Intn(256)), To: rng.Intn(shards),
			})
		}
		if rng.Intn(3) == 0 {
			v := graph.VertexID(rng.Intn(256))
			if sh, ok := oracle.Current().Lookup(v); ok {
				_ = sh
				b.Retire = append(b.Retire, v)
				retired = append(retired, v)
			}
		}
		if len(retired) > 0 && rng.Intn(4) == 0 {
			b.Promote = append(b.Promote, retired[rng.Intn(len(retired))])
		}
		ep, err := oracle.CommitBatch(b, wave)
		if err != nil {
			panic(err)
		}
		if ep != uint64(e) {
			panic("oracle epoch drift")
		}
		stream = append(stream, shipment{epoch: ep, b: b, wave: wave})
	}
	return stream, oracle
}

// TestReplicaIdempotentUnderDupReorder is the acceptance property test:
// at-least-once, out-of-order delivery of a commit stream — duplicates
// injected, order shuffled within a bounded window, several concurrent
// delivery goroutines — must leave the replica byte-identical to an oracle
// that applied the stream once, in order. Run under -race.
func TestReplicaIdempotentUnderDupReorder(t *testing.T) {
	const epochs = 200
	for seed := int64(1); seed <= 4; seed++ {
		stream, oracle := genCommitStream(seed, epochs)

		rdir := directory.New(directory.Config{})
		rp := NewReplica(rdir)

		// Build a delivery schedule: every shipment at least once, ~30%
		// duplicated (some twice more), then shuffled within a window of 32
		// so reordering stays bounded but crosses many epochs.
		rng := rand.New(rand.NewSource(seed * 7919))
		deliveries := make([]shipment, 0, 2*epochs)
		deliveries = append(deliveries, stream...)
		for _, sh := range stream {
			for rng.Intn(10) < 3 {
				deliveries = append(deliveries, sh)
			}
		}
		for i := range deliveries {
			j := i + rng.Intn(32)
			if j >= len(deliveries) {
				j = len(deliveries) - 1
			}
			deliveries[i], deliveries[j] = deliveries[j], deliveries[i]
		}

		// Concurrent delivery: 4 goroutines pull from a shared channel, like
		// several fan-out connections feeding one replica.
		ch := make(chan shipment, len(deliveries))
		for _, sh := range deliveries {
			ch <- sh
		}
		close(ch)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for sh := range ch {
					if _, err := rp.Apply(sh.epoch, sh.b, sh.wave); err != nil {
						t.Errorf("seed %d: apply epoch %d: %v", seed, sh.epoch, err)
						return
					}
				}
			}()
		}
		wg.Wait()

		if rp.Applied() != epochs {
			t.Fatalf("seed %d: applied watermark %d, want %d", seed, rp.Applied(), epochs)
		}
		if rp.Pending() != 0 {
			t.Fatalf("seed %d: %d shipments stuck pending", seed, rp.Pending())
		}
		if rp.Dups() == 0 || rp.Reorders() == 0 {
			t.Fatalf("seed %d: schedule exercised no dups (%d) or reorders (%d) — test is vacuous",
				seed, rp.Dups(), rp.Reorders())
		}

		// Byte-identical convergence: same epoch, same shard count, same
		// entry set with identical tiers in both directions.
		want, got := oracle.Current(), rdir.Current()
		if got.Epoch() != want.Epoch() {
			t.Errorf("seed %d: epoch %d, want %d", seed, got.Epoch(), want.Epoch())
		}
		if got.Shards() != want.Shards() {
			t.Errorf("seed %d: shards %d, want %d", seed, got.Shards(), want.Shards())
		}
		if got.Len() != want.Len() || got.ColdLen() != want.ColdLen() {
			t.Errorf("seed %d: len %d/%d cold, want %d/%d",
				seed, got.Len(), got.ColdLen(), want.Len(), want.ColdLen())
		}
		mismatches := 0
		want.Each(func(v graph.VertexID, shard int) bool {
			wsh, wcold, _ := want.LookupTier(v)
			gsh, gcold, ok := got.LookupTier(v)
			if !ok || gsh != wsh || gcold != wcold {
				t.Errorf("seed %d: vertex %d = (%d,cold=%v,ok=%v), want (%d,cold=%v)",
					seed, v, gsh, gcold, ok, wsh, wcold)
				mismatches++
			}
			return mismatches < 10
		})
		got.Each(func(v graph.VertexID, shard int) bool {
			if _, ok := want.Lookup(v); !ok {
				t.Errorf("seed %d: replica has extra vertex %d", seed, v)
				mismatches++
			}
			return mismatches < 10
		})

		st := rdir.Stats()
		ost := oracle.Stats()
		if st.Flips != ost.Flips || st.WaveFlips != ost.WaveFlips {
			t.Errorf("seed %d: replica flips %d/%d wave, want %d/%d — dups leaked through",
				seed, st.Flips, st.WaveFlips, ost.Flips, ost.WaveFlips)
		}
	}
}
