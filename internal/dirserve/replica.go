package dirserve

import (
	"sync"

	"ethpart/internal/directory"
)

// Replica applies the primary's committed batches to a local directory,
// idempotently by primary epoch number. Delivery may be at-least-once and
// out of order: a batch at or below the applied watermark is a duplicate
// and is dropped; a batch ahead of the next contiguous epoch is buffered
// and applied the moment the gap fills. Application therefore happens in
// exactly the primary's commit order, so the replica's directory converges
// byte-identically to the primary's view however the transport mangled
// delivery.
//
// The commit target is a directory.Committer: the replica's Directory
// itself, or a fault.FlakyDirectory wrapping it so chaos schedules can
// stall and fail replica-side commits too.
type Replica struct {
	c directory.Committer

	mu      sync.Mutex
	applied uint64
	pending map[uint64]applyRec

	dups, reorders uint64
}

type applyRec struct {
	b    directory.Batch
	wave bool
}

// NewReplica returns a replica applying through c, with nothing applied
// yet (the primary's first commit is epoch 1).
func NewReplica(c directory.Committer) *Replica {
	return &Replica{c: c, pending: make(map[uint64]applyRec)}
}

// Apply offers one shipped commit. It returns the replica's contiguous
// applied watermark — the ack the fan-out uses to measure per-replica
// apply lag. Safe for concurrent use.
func (r *Replica) Apply(epoch uint64, b directory.Batch, wave bool) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch <= r.applied {
		r.dups++
		return r.applied, nil
	}
	if _, ok := r.pending[epoch]; ok {
		r.dups++
		return r.applied, nil
	}
	if epoch != r.applied+1 {
		r.reorders++
	}
	r.pending[epoch] = applyRec{b: b, wave: wave}
	for {
		rec, ok := r.pending[r.applied+1]
		if !ok {
			return r.applied, nil
		}
		delete(r.pending, r.applied+1)
		if _, err := r.c.CommitBatch(rec.b, rec.wave); err != nil {
			return r.applied, err
		}
		r.applied++
	}
}

// Applied returns the contiguous applied watermark.
func (r *Replica) Applied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Pending reports how many out-of-order batches are buffered awaiting a
// gap fill.
func (r *Replica) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// Dups and Reorders report how many duplicate and out-of-order deliveries
// the replica absorbed.
func (r *Replica) Dups() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dups
}

func (r *Replica) Reorders() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reorders
}
