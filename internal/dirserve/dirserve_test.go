package dirserve

import (
	"net"
	"testing"

	"ethpart/internal/directory"
	"ethpart/internal/graph"
)

// listen opens a loopback listener or fails the test.
func listen(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// sameView asserts b serves exactly a's mapping (tier-insensitive).
func sameView(t *testing.T, name string, a, b *directory.Snapshot) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Errorf("%s: %d entries, want %d", name, b.Len(), a.Len())
	}
	a.Each(func(v graph.VertexID, shard int) bool {
		if got, ok := b.Lookup(v); !ok || got != shard {
			t.Errorf("%s: vertex %d = (%d,%v), want (%d,true)", name, v, got, ok, shard)
			return false
		}
		return true
	})
}

func TestServerBatchLookup(t *testing.T) {
	dir := directory.New(directory.Config{})
	if _, err := dir.Commit(directory.Batch{
		Set:    []directory.Move{{V: 1, To: 0}, {V: 2, To: 1}, {V: 3, To: 2}},
		Shards: 4,
	}); err != nil {
		t.Fatal(err)
	}
	srv := Serve(listen(t), ServerConfig{Dir: dir})
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ids := []graph.VertexID{1, 2, 3, 99}
	out := make([]int32, len(ids))
	epoch, stale, err := c.LookupBatch(ids, out)
	if err != nil {
		t.Fatal(err)
	}
	if stale {
		t.Error("fresh resolve reported stale")
	}
	if epoch != 1 {
		t.Errorf("epoch = %d, want 1", epoch)
	}
	want := []int32{0, 1, 2, NoShard}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("id %d → shard %d, want %d", ids[i], out[i], want[i])
		}
	}
	if srv.Lookups() != 4 || srv.Batches() != 1 {
		t.Errorf("server counted %d lookups / %d batches, want 4 / 1", srv.Lookups(), srv.Batches())
	}

	// Second batch exact-pins the same epoch even after the writer moves on.
	if _, err := dir.Commit(directory.Batch{Set: []directory.Move{{V: 1, To: 3}}}); err != nil {
		t.Fatal(err)
	}
	epoch2, stale2, err := c.LookupBatch(ids[:1], out[:1])
	if err != nil {
		t.Fatal(err)
	}
	if epoch2 != epoch || stale2 {
		t.Errorf("pinned batch got epoch %d (stale=%v), want pinned %d", epoch2, stale2, epoch)
	}
	if out[0] != 0 {
		t.Errorf("pinned view must still serve the old mapping, got %d", out[0])
	}
}

func TestClientRepinAfterEviction(t *testing.T) {
	dir := directory.New(directory.Config{JournalDepth: 4})
	if _, err := dir.Commit(directory.Batch{Set: []directory.Move{{V: 1, To: 0}}, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	srv := Serve(listen(t), ServerConfig{Dir: dir})
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	out := make([]int32, 1)
	if _, _, err := c.LookupBatch([]graph.VertexID{1}, out); err != nil {
		t.Fatal(err)
	}
	pinned := c.Epoch()

	// Push the pinned epoch out of the 4-deep journal.
	for i := 0; i < 8; i++ {
		if _, err := dir.Commit(directory.Batch{Set: []directory.Move{{V: 1, To: i % 2}}}); err != nil {
			t.Fatal(err)
		}
	}
	epoch, stale, err := c.LookupBatch([]graph.VertexID{1}, out)
	if err != nil {
		t.Fatal(err)
	}
	if !stale {
		t.Error("re-pin after eviction must propagate the staleness flag")
	}
	if epoch <= pinned {
		t.Errorf("re-pin landed on epoch %d, want newer than %d", epoch, pinned)
	}
	if c.Evictions != 1 || c.StaleBatches != 1 || c.Repins == 0 {
		t.Errorf("client counters: evictions=%d stale=%d repins=%d, want 1/1/>0",
			c.Evictions, c.StaleBatches, c.Repins)
	}
	if c.Epoch() != epoch {
		t.Errorf("client pin = %d, want %d", c.Epoch(), epoch)
	}
}

func TestFanoutReplication(t *testing.T) {
	primary := directory.New(directory.Config{})

	// Two replicas behind real sockets.
	type rep struct {
		dir *directory.Directory
		rp  *Replica
		srv *Server
	}
	var reps []rep
	var addrs []string
	for i := 0; i < 2; i++ {
		d := directory.New(directory.Config{})
		rp := NewReplica(d)
		srv := Serve(listen(t), ServerConfig{Dir: d, Replica: rp})
		defer srv.Close()
		reps = append(reps, rep{dir: d, rp: rp, srv: srv})
		addrs = append(addrs, srv.Addr())
	}
	f, err := NewFanout(primary, nil, addrs...)
	if err != nil {
		t.Fatal(err)
	}

	// A mixed commit stream: placements, a wave, retirements, a resize
	// batch carrying its shard-count change, and a promotion.
	batches := []struct {
		b    directory.Batch
		wave bool
	}{
		{directory.Batch{Set: []directory.Move{{V: 1, To: 0}, {V: 2, To: 1}, {V: 3, To: 0}}, Shards: 2}, false},
		{directory.Batch{Set: []directory.Move{{V: 1, To: 1}, {V: 4, To: 0}}}, true},
		{directory.Batch{Retire: []graph.VertexID{2}}, false},
		{directory.Batch{Set: []directory.Move{{V: 5, To: 3}}, Shards: 4}, true},
		{directory.Batch{Promote: []graph.VertexID{2}}, false},
	}
	for _, tb := range batches {
		if _, err := f.CommitBatch(tb.b, tb.wave); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for i, r := range reps {
		if got := r.rp.Applied(); got != uint64(len(batches)) {
			t.Errorf("replica %d applied %d, want %d", i, got, len(batches))
		}
		sameView(t, "replica", primary.Current(), r.dir.Current())
		sameView(t, "primary", r.dir.Current(), primary.Current())
		if got := r.dir.Current().Shards(); got != 4 {
			t.Errorf("replica %d shard count %d, want 4 (resize must replicate)", i, got)
		}
		if got := r.dir.Current().Epoch(); got != primary.Current().Epoch() {
			t.Errorf("replica %d epoch %d, want %d", i, got, primary.Current().Epoch())
		}
		st := r.dir.Stats()
		if st.WaveFlips != 2 {
			t.Errorf("replica %d counted %d wave flips, want 2", i, st.WaveFlips)
		}
	}
	for _, fs := range f.FeedStats() {
		if fs.Err != nil {
			t.Errorf("feed %s failed: %v", fs.Addr, fs.Err)
		}
		if fs.Acked != uint64(len(batches)) {
			t.Errorf("feed %s acked %d, want %d", fs.Addr, fs.Acked, len(batches))
		}
	}
}

func TestReplicaLookupWithEpochFloor(t *testing.T) {
	// A client pinned to the primary's epoch must skip a replica that has
	// not applied it yet (statusBehind) and never read backwards.
	primary := directory.New(directory.Config{})
	rdir := directory.New(directory.Config{})
	rp := NewReplica(rdir)
	srv := Serve(listen(t), ServerConfig{Dir: rdir, Replica: rp})
	defer srv.Close()

	if _, err := primary.Commit(directory.Batch{Set: []directory.Move{{V: 7, To: 1}}, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Simulate a pin taken from the primary: ask the lagging replica for
	// epoch ≥ 1 while it is still empty.
	out := make([]int32, 1)
	c.pin = primary.Epoch()
	if _, _, err := c.LookupBatch([]graph.VertexID{7}, out); err == nil {
		t.Fatal("lookup against a wholly-behind fleet must fail, not regress")
	}
	if c.Behind == 0 {
		t.Error("behind counter must record the lagging replica")
	}

	// Catch the replica up; the same pinned lookup now succeeds.
	if _, err := rp.Apply(1, directory.Batch{Set: []directory.Move{{V: 7, To: 1}}, Shards: 2}, false); err != nil {
		t.Fatal(err)
	}
	epoch, _, err := c.LookupBatch([]graph.VertexID{7}, out)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || out[0] != 1 {
		t.Errorf("caught-up replica served (epoch %d, shard %d), want (1, 1)", epoch, out[0])
	}
}

func TestColdPromotionOverWire(t *testing.T) {
	// Lookup of a retired (cold) entry on a replica pushes a hint; the
	// hint rides the next apply ack into the primary's ring; the publisher
	// drains it into a Promote lane; the promotion fans back out.
	primaryDir := directory.New(directory.Config{})
	ring := directory.NewHintRing(64)

	rdir := directory.New(directory.Config{})
	rp := NewReplica(rdir)
	rring := directory.NewHintRing(64)
	srv := Serve(listen(t), ServerConfig{Dir: rdir, Replica: rp, Hints: rring})
	defer srv.Close()

	f, err := NewFanout(primaryDir, ring, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	pub := directory.NewPublisher(f)
	pub.SetShards(2)
	pub.AttachHints(ring)

	// Place then retire vertex 9.
	pub.OnPlace(9, 1)
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	pub.OnRetire(9, 1)
	if err := pub.Flush(); err != nil {
		t.Fatal(err)
	}
	// Let the replica catch up before reading from it.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if rdir.Current().ColdLen() != 1 {
		t.Fatalf("replica cold len = %d, want 1", rdir.Current().ColdLen())
	}

	// A cold hit on the replica leaves a hint in its ring.
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out := make([]int32, 1)
	if _, _, err := c.LookupBatch([]graph.VertexID{9}, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Fatalf("cold lookup = %d, want 1", out[0])
	}
	if srv.ColdHits() != 1 {
		t.Fatalf("server cold hits = %d, want 1", srv.ColdHits())
	}

	// Reconnect the feed; the next commit's ack returns the hint, and the
	// commit after that carries the promotion.
	f2, err := NewFanout(primaryDir, ring, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	pub2 := directory.NewPublisher(f2)
	pub2.SetShards(2)
	pub2.AttachHints(ring)
	pub2.OnPlace(10, 0)
	if err := pub2.Flush(); err != nil { // ack brings the hint home
		t.Fatal(err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	if ring.Empty() {
		t.Fatal("replica hint never reached the primary ring")
	}
	f3, err := NewFanout(primaryDir, ring, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	pub3 := directory.NewPublisher(f3)
	pub3.SetShards(2)
	pub3.AttachHints(ring)
	if err := pub3.Flush(); err != nil { // hint-only flush: the promotion commit
		t.Fatal(err)
	}
	if err := f3.Close(); err != nil {
		t.Fatal(err)
	}

	if primaryDir.Stats().Promoted != 1 {
		t.Errorf("primary promoted %d, want 1", primaryDir.Stats().Promoted)
	}
	if rdir.Stats().Promoted != 1 {
		t.Errorf("replica promoted %d, want 1 (promotion must fan out)", rdir.Stats().Promoted)
	}
	if got, ok := primaryDir.Current().Lookup(9); !ok || got != 1 {
		t.Errorf("promoted mapping changed: (%d,%v), want (1,true)", got, ok)
	}
	if primaryDir.Current().ColdLen() != 0 {
		t.Errorf("primary cold len = %d, want 0 after promotion", primaryDir.Current().ColdLen())
	}
	sameView(t, "replica", primaryDir.Current(), rdir.Current())
}
