package dirserve

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"ethpart/internal/directory"
	"ethpart/internal/graph"
)

// Fanout is the epoch-flip fan-out plane: a directory.Committer that
// commits through the inner committer first (normally the primary
// *directory.Directory, so the batch gets its real epoch number), then
// ships (epoch, batch) to every replica feed. Shipping is asynchronous —
// the epoch-flip stall on the primary is the local commit plus an enqueue
// — with per-replica bounded channels providing backpressure, and each
// feed's acks carry the replica's contiguous applied watermark, from which
// the per-replica apply lag (primary epoch minus acked epoch) is tracked.
//
// Fanout sits *below* the fault plane (fault.NewFlakyCommitter wraps it):
// stalled waves are shipped when they actually land, in landed order, so
// replicas see exactly the primary's commit sequence.
type Fanout struct {
	inner directory.Committer
	hints *directory.HintRing
	feeds []*feed
}

// feedQueueDepth bounds each replica's in-flight shipments; a replica
// falling further behind than this backpressures the committer.
const feedQueueDepth = 1024

type shipment struct {
	epoch uint64
	b     directory.Batch
	wave  bool
}

// feed is one replica connection and its shipping goroutine.
type feed struct {
	addr string
	conn net.Conn
	ch   chan shipment
	done chan struct{}

	err     atomic.Pointer[error]
	acked   atomic.Uint64
	shipped atomic.Uint64

	lagMax atomic.Uint64
	lagSum atomic.Uint64
	lagN   atomic.Uint64
}

// NewFanout dials every replica address and returns the committer. hints,
// when non-nil, receives promotion hints piggybacked on replica acks (the
// same ring the publisher drains into Promote lanes).
func NewFanout(inner directory.Committer, hints *directory.HintRing, addrs ...string) (*Fanout, error) {
	f := &Fanout{inner: inner, hints: hints}
	for _, a := range addrs {
		conn, err := net.Dial("tcp", a)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("dirserve: fan-out dial %s: %w", a, err)
		}
		fd := &feed{addr: a, conn: conn, ch: make(chan shipment, feedQueueDepth), done: make(chan struct{})}
		f.feeds = append(f.feeds, fd)
		go f.runFeed(fd)
	}
	return f, nil
}

// CommitBatch implements directory.Committer: commit locally, then ship
// the committed batch (with its real epoch) to every replica. A replica
// feed failure surfaces on the next commit — replication is not best
// effort.
func (f *Fanout) CommitBatch(b directory.Batch, wave bool) (uint64, error) {
	e, err := f.inner.CommitBatch(b, wave)
	if err != nil {
		return e, err
	}
	for _, fd := range f.feeds {
		if ferr := fd.err.Load(); ferr != nil {
			return e, fmt.Errorf("dirserve: replica %s feed failed: %w", fd.addr, *ferr)
		}
		fd.ch <- shipment{epoch: e, b: b, wave: wave}
		fd.shipped.Store(e)
		if lag := e - fd.acked.Load(); lag > 0 {
			if cur := fd.lagMax.Load(); lag > cur {
				fd.lagMax.CompareAndSwap(cur, lag)
			}
			fd.lagSum.Add(lag)
			fd.lagN.Add(1)
		}
	}
	return e, nil
}

// runFeed owns one replica connection: encode, write, await ack. On error
// it records the failure and keeps draining the channel so the committer
// never blocks on a dead replica.
func (f *Fanout) runFeed(fd *feed) {
	defer close(fd.done)
	bw := newWriter(fd.conn)
	br := newReader(fd.conn)
	var req, resp []byte
	for sh := range fd.ch {
		if fd.err.Load() != nil {
			continue // drain
		}
		req = append(req[:0], msgApply)
		req = appendU64(req, sh.epoch)
		if sh.wave {
			req = append(req, 1)
		} else {
			req = append(req, 0)
		}
		req = appendBatch(req, sh.b)
		if err := writeFrame(bw, req); err != nil {
			fd.fail(err)
			continue
		}
		frame, err := readFrame(br, resp)
		if err != nil {
			fd.fail(err)
			continue
		}
		resp = frame
		cur := cursor{p: frame}
		if cur.u8() != msgApplyResp {
			fd.fail(fmt.Errorf("unexpected response type"))
			continue
		}
		status := cur.u8()
		applied := cur.u64()
		if msgLen := cur.count(1); status != 0 {
			fd.fail(fmt.Errorf("replica apply rejected: %s", string(cur.p[:msgLen])))
			continue
		}
		fd.acked.Store(applied)
		if n := cur.count(8); n > 0 && f.hints != nil {
			for i := 0; i < n; i++ {
				f.hints.Push(graph.VertexID(cur.u64()))
			}
		}
		if cur.err != nil {
			fd.fail(cur.err)
		}
	}
}

func (fd *feed) fail(err error) {
	e := fmt.Errorf("dirserve: feed %s: %w", fd.addr, err)
	fd.err.CompareAndSwap(nil, &e)
}

// Close flushes every feed (all queued shipments are sent and acked),
// closes the connections and returns the first feed error, if any.
func (f *Fanout) Close() error {
	var wg sync.WaitGroup
	for _, fd := range f.feeds {
		if fd.ch != nil {
			close(fd.ch)
		}
		wg.Add(1)
		go func(fd *feed) {
			defer wg.Done()
			if fd.done != nil {
				<-fd.done
			}
			fd.conn.Close()
		}(fd)
	}
	wg.Wait()
	for _, fd := range f.feeds {
		if err := fd.err.Load(); err != nil {
			return *err
		}
	}
	return nil
}

// FeedStat is one replica feed's shipping summary.
type FeedStat struct {
	Addr    string
	Shipped uint64 // highest epoch enqueued
	Acked   uint64 // highest applied watermark acked
	LagMax  uint64 // worst observed apply lag, in epochs
	LagMean float64
	Err     error
}

// FeedStats snapshots every feed.
func (f *Fanout) FeedStats() []FeedStat {
	out := make([]FeedStat, len(f.feeds))
	for i, fd := range f.feeds {
		st := FeedStat{
			Addr:    fd.addr,
			Shipped: fd.shipped.Load(),
			Acked:   fd.acked.Load(),
			LagMax:  fd.lagMax.Load(),
		}
		if n := fd.lagN.Load(); n > 0 {
			st.LagMean = float64(fd.lagSum.Load()) / float64(n)
		}
		if err := fd.err.Load(); err != nil {
			st.Err = *err
		}
		out[i] = st
	}
	return out
}
