package dirserve

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"ethpart/internal/directory"
	"ethpart/internal/graph"
)

// ServerConfig wires one serving process.
type ServerConfig struct {
	// Dir is the directory snapshots are served from. Required.
	Dir *directory.Directory
	// Hints, when non-nil, receives a promotion hint for every lookup that
	// hit the cold tier. On the primary the publisher drains the ring
	// directly; on a replica the drained hints ride home on apply acks.
	Hints *directory.HintRing
	// Replica, when non-nil, lets this server accept msgApply frames — the
	// epoch fan-out feed of a replica process. Lookup-only servers (the
	// primary front end) leave it nil and reject applies.
	Replica *Replica
}

// Server is one serving process: an accept loop over a real listener, one
// goroutine per connection, all answering from lock-free directory
// snapshots. Lookups never take a lock; the only mutex in the serving path
// is the replica's apply ordering.
type Server struct {
	cfg ServerConfig
	l   net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Serving counters (atomic; read via their accessors).
	lookups  atomic.Int64 // individual IDs answered
	batches  atomic.Int64 // lookup requests served
	coldHits atomic.Int64 // answers that came from the cold tier
}

// Serve starts serving on l and returns immediately.
func Serve(l net.Listener, cfg ServerConfig) *Server {
	s := &Server{cfg: cfg, l: l, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address (dial this).
func (s *Server) Addr() string { return s.l.Addr().String() }

// Lookups, Batches and ColdHits report cumulative serving counters.
func (s *Server) Lookups() int64  { return s.lookups.Load() }
func (s *Server) Batches() int64  { return s.batches.Load() }
func (s *Server) ColdHits() int64 { return s.coldHits.Load() }

// Close stops the accept loop, closes every live connection and waits for
// the handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.l.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// handle serves one connection until EOF or a protocol error.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	br := newReader(conn)
	bw := newWriter(conn)
	var in, out []byte
	for {
		frame, err := readFrame(br, in)
		if err != nil {
			return
		}
		in = frame
		c := cursor{p: frame}
		switch c.u8() {
		case msgLookup:
			out = s.answerLookup(&c, out[:0])
		case msgApply:
			out = s.answerApply(&c, out[:0])
		case msgStats:
			out = s.answerStats(out[:0])
		default:
			return // unknown message poisons the connection
		}
		if c.err != nil || out == nil {
			return
		}
		if err := writeFrame(bw, out); err != nil {
			return
		}
	}
}

// answerLookup serves one snapshot-pinned batch lookup. The whole batch is
// answered from a single snapshot: either the exact journal-pinned epoch,
// or the Resolve view (journaled if retained, newest-with-stale-flag if
// evicted). Cold-tier hits push promotion hints.
func (s *Server) answerLookup(c *cursor, out []byte) []byte {
	minEpoch := c.u64()
	flags := c.u8()
	n := c.count(8)
	if c.err != nil {
		return nil
	}

	status := statusOK
	var snap *directory.Snapshot
	stale := false
	if flags&lookupExact != 0 {
		pinned, err := s.cfg.Dir.PinEpoch(minEpoch)
		switch {
		case err == nil:
			snap = pinned
		case errors.Is(err, directory.ErrEpochEvicted) && s.cfg.Dir.Epoch() < minEpoch:
			// Not evicted — never published here yet: a lagging replica.
			status = statusBehind
		case errors.Is(err, directory.ErrEpochEvicted):
			status = statusEvicted
		default:
			return nil
		}
	} else if minEpoch == 0 {
		// Epoch 0 is the wire's "no pin yet" sentinel: a fresh client wants
		// the newest view, not the journaled empty initial snapshot.
		snap = s.cfg.Dir.Current()
	} else {
		snap, stale = s.cfg.Dir.Resolve(minEpoch)
		if snap.Epoch() < minEpoch {
			status = statusBehind
		}
	}

	out = append(out, msgLookupResp, status)
	if status != statusOK {
		out = appendU64(out, s.cfg.Dir.Epoch())
		out = append(out, 0)
		out = appendU32(out, 0)
		return out
	}
	out = appendU64(out, snap.Epoch())
	if stale {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = appendU32(out, uint32(n))
	cold := int64(0)
	for i := 0; i < n; i++ {
		v := graph.VertexID(c.u64())
		sh, isCold, ok := snap.LookupTier(v)
		if !ok {
			sh = directory.NoShard
		} else if isCold {
			cold++
			if s.cfg.Hints != nil {
				s.cfg.Hints.Push(v)
			}
		}
		out = appendU32(out, uint32(int32(sh)))
	}
	if c.err != nil {
		return nil
	}
	s.lookups.Add(int64(n))
	s.batches.Add(1)
	s.coldHits.Add(cold)
	return out
}

// answerApply applies one fan-out shipment and acks with the replica's
// applied watermark plus any promotion hints collected since the last ack.
func (s *Server) answerApply(c *cursor, out []byte) []byte {
	epoch := c.u64()
	wave := c.u8() != 0
	b := c.decodeBatch()
	if c.err != nil || s.cfg.Replica == nil {
		return nil
	}
	applied, err := s.cfg.Replica.Apply(epoch, b, wave)
	out = append(out, msgApplyResp)
	if err != nil {
		out = append(out, 1)
		out = appendU64(out, applied)
		msg := err.Error()
		out = appendU32(out, uint32(len(msg)))
		out = append(out, msg...)
		return out
	}
	out = append(out, 0)
	out = appendU64(out, applied)
	out = appendU32(out, 0) // no error text
	// Piggyback locally collected promotion hints on the ack: the fan-out
	// pushes them into the primary's ring, closing the promotion loop for
	// lookups served by this replica.
	nPos := len(out)
	out = appendU32(out, 0)
	if s.cfg.Hints != nil {
		n := uint32(0)
		s.cfg.Hints.Drain(func(v graph.VertexID) {
			out = appendU64(out, uint64(v))
			n++
		})
		out[nPos] = byte(n >> 24)
		out[nPos+1] = byte(n >> 16)
		out[nPos+2] = byte(n >> 8)
		out[nPos+3] = byte(n)
	}
	return out
}

// answerStats reports the applied watermark and current local epoch.
func (s *Server) answerStats(out []byte) []byte {
	out = append(out, msgStatsResp)
	applied := uint64(0)
	if s.cfg.Replica != nil {
		applied = s.cfg.Replica.Applied()
	}
	out = appendU64(out, applied)
	out = appendU64(out, s.cfg.Dir.Epoch())
	out = appendU64(out, uint64(s.cfg.Dir.Current().Len()))
	return out
}
