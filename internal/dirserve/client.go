package dirserve

import (
	"bufio"
	"fmt"
	"net"

	"ethpart/internal/directory"
	"ethpart/internal/graph"
)

// Client issues snapshot-pinned batch lookups against a set of serving
// processes (the primary front end and any replicas), rotating between
// them per batch. It tracks a pinned epoch:
//
//   - the first batch resolves the newest view on some server and pins its
//     epoch;
//   - later batches pin that exact epoch (one journal-backed snapshot per
//     batch), so a sequence of batches reads one consistent version;
//   - when the pin ages out of a server's journal (statusEvicted) the
//     client re-pins through the Resolve path — the answer is the newest
//     view, the wire's stale flag records the degradation, and the new
//     epoch becomes the pin;
//   - a server that has not reached the pinned epoch yet (statusBehind, a
//     lagging replica) is skipped for the next one: the client's view
//     never moves backwards — reads are "epoch ≥ e" against any replica.
//
// A Client is not safe for concurrent use; give each reader goroutine its
// own (connections are cheap; the servers multiplex).
type Client struct {
	conns []*clientConn
	rr    int
	pin   uint64

	// Serving-quality counters.
	StaleBatches int64 // batches answered from a degraded (stale) view
	Evictions    int64 // exact pins that aged out and were re-resolved
	Behind       int64 // servers skipped for lagging the pin
	Repins       int64 // times the pin moved to a newer epoch
}

type clientConn struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	req  []byte
	resp []byte
}

// Dial connects to every addr; all must succeed.
func Dial(addrs ...string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dirserve: no server addresses")
	}
	c := &Client{}
	for _, a := range addrs {
		conn, err := net.Dial("tcp", a)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dirserve: dial %s: %w", a, err)
		}
		c.conns = append(c.conns, &clientConn{conn: conn, br: newReader(conn), bw: newWriter(conn)})
	}
	return c, nil
}

// Close closes every connection.
func (c *Client) Close() {
	for _, cc := range c.conns {
		cc.conn.Close()
	}
	c.conns = nil
}

// Epoch returns the client's currently pinned epoch (zero before the
// first batch).
func (c *Client) Epoch() uint64 { return c.pin }

// lookupResult is one decoded lookup response.
type lookupResult struct {
	status byte
	epoch  uint64
	stale  bool
}

// lookup performs one request/response round trip on cc, filling out with
// the per-ID shards when the status is OK.
func (cc *clientConn) lookup(minEpoch uint64, exact bool, ids []graph.VertexID, out []int32) (lookupResult, error) {
	req := append(cc.req[:0], msgLookup)
	req = appendU64(req, minEpoch)
	if exact {
		req = append(req, lookupExact)
	} else {
		req = append(req, 0)
	}
	req = appendU32(req, uint32(len(ids)))
	for _, v := range ids {
		req = appendU64(req, uint64(v))
	}
	cc.req = req
	if err := writeFrame(cc.bw, req); err != nil {
		return lookupResult{}, err
	}
	frame, err := readFrame(cc.br, cc.resp)
	if err != nil {
		return lookupResult{}, err
	}
	cc.resp = frame
	cur := cursor{p: frame}
	if cur.u8() != msgLookupResp {
		return lookupResult{}, fmt.Errorf("dirserve: unexpected response type")
	}
	res := lookupResult{status: cur.u8()}
	res.epoch = cur.u64()
	res.stale = cur.u8() != 0
	n := cur.count(4)
	if res.status == statusOK {
		if n != len(ids) {
			return lookupResult{}, fmt.Errorf("dirserve: response carries %d shards for %d ids", n, len(ids))
		}
		for i := 0; i < n; i++ {
			out[i] = int32(cur.u32())
		}
	}
	if cur.err != nil {
		return lookupResult{}, cur.err
	}
	return res, nil
}

// LookupBatch answers ids from one snapshot on some server, filling out
// (len(out) must equal len(ids); NoShard = -1 marks unmapped vertices). It
// returns the serving epoch and whether the view was a degraded (stale)
// resolve. See the type comment for the pinning protocol.
func (c *Client) LookupBatch(ids []graph.VertexID, out []int32) (epoch uint64, stale bool, err error) {
	if len(out) != len(ids) {
		return 0, false, fmt.Errorf("dirserve: out length %d != ids length %d", len(out), len(ids))
	}
	start := c.rr
	c.rr++
	// Two passes over the fleet: one server answering is enough, and a
	// fleet that is wholly behind the pin (impossible while the primary is
	// in the set) is a hard error rather than a spin.
	for i := 0; i < 2*len(c.conns); i++ {
		cc := c.conns[(start+i)%len(c.conns)]
		if c.pin != 0 {
			res, lerr := cc.lookup(c.pin, true, ids, out)
			if lerr != nil {
				return 0, false, lerr
			}
			switch res.status {
			case statusOK:
				return res.epoch, false, nil
			case statusBehind:
				c.Behind++
				continue
			case statusEvicted:
				c.Evictions++
				// Fall through to the resolve path on this same server.
			}
		}
		res, lerr := cc.lookup(c.pin, false, ids, out)
		if lerr != nil {
			return 0, false, lerr
		}
		switch res.status {
		case statusOK:
			if res.epoch > c.pin {
				c.Repins++
			}
			c.pin = res.epoch
			if res.stale {
				c.StaleBatches++
			}
			return res.epoch, res.stale, nil
		case statusBehind:
			c.Behind++
			continue
		default:
			return 0, false, fmt.Errorf("dirserve: resolve returned status %d", res.status)
		}
	}
	return 0, false, fmt.Errorf("dirserve: no server could serve epoch ≥ %d", c.pin)
}

// Stats probes one server's applied watermark, local epoch and entry
// count (round-robin like lookups).
func (c *Client) Stats() (applied, epoch, entries uint64, err error) {
	cc := c.conns[c.rr%len(c.conns)]
	c.rr++
	req := append(cc.req[:0], msgStats)
	cc.req = req
	if err := writeFrame(cc.bw, req); err != nil {
		return 0, 0, 0, err
	}
	frame, err := readFrame(cc.br, cc.resp)
	if err != nil {
		return 0, 0, 0, err
	}
	cc.resp = frame
	cur := cursor{p: frame}
	if cur.u8() != msgStatsResp {
		return 0, 0, 0, fmt.Errorf("dirserve: unexpected response type")
	}
	applied, epoch, entries = cur.u64(), cur.u64(), cur.u64()
	return applied, epoch, entries, cur.err
}

// NoShard re-exports the directory's unmapped sentinel for wire callers.
const NoShard = int32(directory.NoShard)
