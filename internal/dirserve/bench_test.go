package dirserve

import (
	"net"
	"testing"

	"ethpart/internal/directory"
	"ethpart/internal/graph"
)

// BenchmarkNetLookupBatch measures one snapshot-pinned batch lookup round
// trip (256 IDs per batch) over a real loopback TCP socket — the networked
// counterpart of the in-process BenchmarkSnapshotLookup.
func BenchmarkNetLookupBatch(b *testing.B) {
	dir := directory.New(directory.Config{})
	const nVerts = 1 << 16
	batch := directory.Batch{Shards: 8}
	for v := 0; v < nVerts; v++ {
		batch.Set = append(batch.Set, directory.Move{V: graph.VertexID(v), To: v % 8})
	}
	if _, err := dir.Commit(batch); err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := Serve(l, ServerConfig{Dir: dir})
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	const batchLen = 256
	ids := make([]graph.VertexID, batchLen)
	out := make([]int32, batchLen)
	for i := range ids {
		ids[i] = graph.VertexID((i * 257) % nVerts)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.LookupBatch(ids, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(batchLen), "ids/op")
}
