// Tokenshard: deploy real contracts on the chain substrate, execute a
// token-heavy dapp workload through the EVM, extract the interaction graph
// from execution traces, and study how well a dapp-dominated graph shards —
// the "ICO boom" workload the paper's 2017 data is full of.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/graph"
	"ethpart/internal/metrics"
	"ethpart/internal/partition"
	"ethpart/internal/partition/multilevel"
	"ethpart/internal/trace"
	"ethpart/internal/types"
	"ethpart/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Genesis: one funded deployer plus a user population.
	deployer := types.AddressFromSeq(1)
	alloc := map[types.Address]evm.Word{deployer: evm.WordFromUint64(1 << 50)}
	const users = 200
	userAddrs := make([]types.Address, users)
	for i := range userAddrs {
		userAddrs[i] = types.AddressFromSeq(uint64(10 + i))
		alloc[userAddrs[i]] = evm.WordFromUint64(1 << 30)
	}
	c := chain.NewChain(chain.DefaultConfig(), alloc)
	miner := types.AddressFromSeq(2)

	// Deploy three tokens and a crowdsale per token.
	nonce := uint64(0)
	deploy := func(runtime []byte) types.Address {
		tx := &chain.Transaction{
			Nonce: nonce, From: deployer,
			Data: evm.DeployWrapper(runtime), GasLimit: 5_000_000, GasPrice: 1,
		}
		nonce++
		block, receipts, skipped := c.BuildBlock(miner, int64(1000+nonce), []*chain.Transaction{tx})
		if len(skipped) > 0 || !receipts[0].Success {
			log.Fatalf("deploy failed in block %d: %v %v", block.Header.Number, skipped, receipts[0].Err)
		}
		return *receipts[0].ContractAddress
	}
	var tokens, sales []types.Address
	for i := 0; i < 3; i++ {
		token := deploy(workload.TokenRuntime())
		tokens = append(tokens, token)
		sales = append(sales, deploy(workload.CrowdsaleRuntime(token, deployer)))
	}
	fmt.Printf("deployed %d tokens and %d crowdsales\n", len(tokens), len(sales))

	// Each user has a "home" token (Zipf-ish: token 0 is the hottest) and
	// sends token transfers to other users of the same token, with
	// occasional crowdsale buys.
	home := make([]int, users)
	for i := range home {
		r := rng.Float64()
		switch {
		case r < 0.6:
			home[i] = 0
		case r < 0.85:
			home[i] = 1
		default:
			home[i] = 2
		}
	}
	nonces := make(map[types.Address]uint64)
	reg := trace.NewRegistry()
	st := c.State()
	isContract := func(a types.Address) bool { return len(st.GetCode(a)) > 0 }
	g := graph.New()

	const blocks = 50
	for b := 0; b < blocks; b++ {
		var txs []*chain.Transaction
		for t := 0; t < 40; t++ {
			ui := rng.Intn(users)
			user := userAddrs[ui]
			tok := home[ui]
			if rng.Float64() < 0.15 {
				// Crowdsale buy.
				sale := sales[tok]
				txs = append(txs, &chain.Transaction{
					Nonce: nonces[user], From: user, To: &sale,
					Value: evm.WordFromUint64(1_000), GasLimit: 500_000, GasPrice: 1,
				})
			} else {
				// Token transfer to a same-community peer.
				peer := userAddrs[rng.Intn(users)]
				var data [64]byte
				pb := evm.WordFromBytes(peer[:]).Bytes32()
				ab := evm.WordFromUint64(uint64(1 + rng.Intn(50))).Bytes32()
				copy(data[0:32], pb[:])
				copy(data[32:64], ab[:])
				token := tokens[tok]
				txs = append(txs, &chain.Transaction{
					Nonce: nonces[user], From: user, To: &token,
					Data: data[:], GasLimit: 300_000, GasPrice: 1,
				})
			}
			nonces[user]++
		}
		block, receipts, skipped := c.BuildBlock(miner, int64(2000+b), txs)
		if len(skipped) > 0 {
			log.Fatalf("block %d skipped %d txs: %v", block.Header.Number, len(skipped), skipped[0])
		}
		for _, rec := range trace.FromReceipts(block.Header.Number, block.Header.Time, receipts, reg, isContract) {
			if err := rec.Apply(g); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("executed %d blocks: graph has %d vertices, %d edges\n\n",
		blocks, g.VertexCount(), g.EdgeCount())

	// Shard the dapp graph at k = 2, 4, 8.
	csr := graph.NewCSR(g)
	ml := multilevel.New(multilevel.Config{Seed: 3})
	fmt.Println("k   method      dyn-cut  dyn-balance")
	for _, k := range []int{2, 4, 8} {
		for _, m := range []struct {
			name string
			p    partition.Partitioner
		}{{"hash", partition.Hash{}}, {"multilevel", ml}} {
			parts, err := m.p.Partition(csr, k)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-3d %-10s %6.1f%%  %8.3f\n", k, m.name,
				100*metrics.EdgeCutParts(csr, parts, true),
				metrics.BalanceParts(csr, parts, k, true))
		}
	}
	fmt.Println("\nToken communities shard well until k exceeds the community count;")
	fmt.Println("the hot token then has to be split and the cut jumps — the paper's")
	fmt.Println("edge-cut-vs-k trend, driven by real EVM execution traces.")
}
