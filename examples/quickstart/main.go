// Quickstart: build a small blockchain graph by hand, partition it with
// hashing and with the multilevel (METIS-style) partitioner, and compare
// the paper's metrics — edge-cut and balance — side by side.
package main

import (
	"fmt"
	"log"

	"ethpart/internal/graph"
	"ethpart/internal/metrics"
	"ethpart/internal/partition"
	"ethpart/internal/partition/multilevel"
)

func main() {
	// A toy "DeFi" neighbourhood: two token communities whose users mostly
	// interact within their own community, bridged by one exchange
	// contract. Vertices 0/100 are the token contracts, 50 the exchange.
	g := graph.New()
	addEdge := func(u, v graph.VertexID, w int64, uk, vk graph.Kind) {
		if err := g.AddInteraction(u, v, uk, vk, w); err != nil {
			log.Fatal(err)
		}
	}
	const users = 40
	for i := 1; i <= users; i++ {
		// Community A: users 1..40 use token 0.
		addEdge(graph.VertexID(i), 0, int64(1+i%5), graph.KindAccount, graph.KindContract)
		// Community B: users 101..140 use token 100.
		addEdge(graph.VertexID(100+i), 100, int64(1+i%5), graph.KindAccount, graph.KindContract)
	}
	// A few cross-community trades through the exchange.
	for i := 1; i <= 5; i++ {
		addEdge(graph.VertexID(i), 50, 1, graph.KindAccount, graph.KindContract)
		addEdge(graph.VertexID(100+i), 50, 1, graph.KindAccount, graph.KindContract)
	}

	fmt.Printf("graph: %d vertices, %d edges, total edge weight %d\n\n",
		g.VertexCount(), g.EdgeCount(), g.TotalEdgeWeight())

	csr := graph.NewCSR(g)
	const k = 2

	for _, method := range []struct {
		name string
		p    partition.Partitioner
	}{
		{"hashing", partition.Hash{}},
		{"multilevel (METIS-style)", multilevel.New(multilevel.Config{Seed: 7})},
	} {
		parts, err := method.p.Partition(csr, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", method.name)
		fmt.Printf("  static  edge-cut: %5.1f%%\n", 100*metrics.EdgeCutParts(csr, parts, false))
		fmt.Printf("  dynamic edge-cut: %5.1f%%\n", 100*metrics.EdgeCutParts(csr, parts, true))
		fmt.Printf("  static  balance:  %5.3f\n", metrics.BalanceParts(csr, parts, k, false))
		fmt.Printf("  dynamic balance:  %5.3f\n\n", metrics.BalanceParts(csr, parts, k, true))
	}

	fmt.Println("The multilevel partitioner finds the community seam (the exchange")
	fmt.Println("bridge), while hashing scatters each community across both shards —")
	fmt.Println("the paper's core observation at toy scale.")
}
