// Custom: implement your own Partitioner against the public interface — a
// weighted label-propagation partitioner — and benchmark it against the
// paper's five methods on the same synthetic history. This is the extension
// point a downstream user starts from.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"ethpart/internal/graph"
	"ethpart/internal/metrics"
	"ethpart/internal/partition"
	"ethpart/internal/partition/multilevel"
	"ethpart/internal/report"
	"ethpart/internal/sim"
	"ethpart/internal/workload"
)

// labelProp is a toy size-constrained label-propagation partitioner: start
// from a hash partition, then let every vertex adopt the label that
// dominates its weighted neighbourhood unless that would overfill a shard.
type labelProp struct {
	rounds  int
	maxFill float64 // max shard size as a multiple of the average
	seed    int64
}

var _ partition.Partitioner = (*labelProp)(nil)

func (lp *labelProp) Partition(c *graph.CSR, k int) ([]int, error) {
	parts, err := partition.Hash{}.Partition(c, k)
	if err != nil {
		return nil, err
	}
	n := c.N()
	if n == 0 {
		return parts, nil
	}
	counts := make([]int, k)
	for _, s := range parts {
		counts[s]++
	}
	limit := int(lp.maxFill * float64(n) / float64(k))
	if limit < 1 {
		limit = 1
	}
	rng := rand.New(rand.NewSource(lp.seed))
	attract := make([]int64, k)
	for round := 0; round < lp.rounds; round++ {
		moved := 0
		for _, vi := range rng.Perm(n) {
			v := int32(vi)
			adj, w := c.Row(v)
			for i := range attract {
				attract[i] = 0
			}
			for p, u := range adj {
				attract[parts[u]] += w[p]
			}
			best := parts[v]
			for s := 0; s < k; s++ {
				if s != best && attract[s] > attract[best] && counts[s] < limit {
					best = s
				}
			}
			if best != parts[v] {
				counts[parts[v]]--
				counts[best]++
				parts[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return parts, nil
}

func main() {
	eras := []workload.Era{{
		Name:          "mix",
		Start:         time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC),
		End:           time.Date(2017, 5, 1, 0, 0, 0, 0, time.UTC),
		TxPerDayStart: 50_000, TxPerDayEnd: 90_000,
		Kind:           workload.GrowthExponential,
		NewAccountFrac: 0.2, DeploysPerDay: 20,
		Mix: workload.TxMix{Transfer: 0.5, Token: 0.22, Wallet: 0.1, Crowdsale: 0.08, Game: 0.05, Airdrop: 0.05},
	}}
	fmt.Println("generating two months of history...")
	gt, err := sim.Generate(workload.Config{Seed: 21, Scale: 0.02, Eras: eras, BlockInterval: time.Hour})
	if err != nil {
		log.Fatal(err)
	}

	// Build the final graph once and compare one-shot partitions.
	g := graph.New()
	for _, rec := range gt.Records {
		if err := rec.Apply(g); err != nil {
			log.Fatal(err)
		}
	}
	csr := graph.NewCSR(g)
	fmt.Printf("graph: %s vertices, %s edges\n\n",
		report.FormatCount(int64(csr.N())), report.FormatCount(int64(csr.NumEdges)))

	const k = 4
	candidates := []struct {
		name string
		p    partition.Partitioner
	}{
		{"hash", partition.Hash{}},
		{"multilevel", multilevel.New(multilevel.Config{Seed: 5})},
		{"label-prop (custom)", &labelProp{rounds: 8, maxFill: 1.15, seed: 5}},
	}
	var rows [][]string
	for _, cand := range candidates {
		start := time.Now()
		parts, err := cand.p.Partition(csr, k)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, []string{
			cand.name,
			report.FormatFloat(metrics.EdgeCutParts(csr, parts, true)),
			report.FormatFloat(metrics.BalanceParts(csr, parts, k, false)),
			report.FormatFloat(metrics.BalanceParts(csr, parts, k, true)),
			time.Since(start).Round(time.Millisecond).String(),
		})
	}
	if err := report.Table(os.Stdout, []string{
		"partitioner", "dyn cut", "static bal", "dyn bal", "time",
	}, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLabel propagation is fast and balance-friendly but leaves more of")
	fmt.Println("the cut on the table than the multilevel partitioner — the classic")
	fmt.Println("quality/latency trade-off when choosing a repartitioning engine.")
}
