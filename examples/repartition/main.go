// Repartition: compare repartitioning policies — periodic R-METIS against
// threshold-triggered TR-METIS — over a six-month synthetic history,
// reproducing the paper's observation that thresholds cut the number of
// moved vertices dramatically without giving up cut or balance.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"ethpart/internal/report"
	"ethpart/internal/sim"
	"ethpart/internal/workload"
)

func main() {
	eras := []workload.Era{{
		Name:          "2017-growth",
		Start:         time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
		End:           time.Date(2017, 7, 1, 0, 0, 0, 0, time.UTC),
		TxPerDayStart: 45_000, TxPerDayEnd: 150_000,
		Kind:           workload.GrowthExponential,
		NewAccountFrac: 0.22,
		DeploysPerDay:  30,
		Mix: workload.TxMix{
			Transfer: 0.5, Token: 0.25, Wallet: 0.08,
			Crowdsale: 0.09, Game: 0.04, Airdrop: 0.04,
		},
	}}

	fmt.Println("generating six months of 2017-style history...")
	gt, err := sim.Generate(workload.Config{Seed: 9, Scale: 0.01, Eras: eras, BlockInterval: time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s interactions, %s vertices\n\n",
		report.FormatCount(int64(len(gt.Records))),
		report.FormatCount(int64(gt.Registry.Len())))

	type policy struct {
		label string
		cfg   sim.Config
	}
	policies := []policy{
		{"R-METIS every 2 weeks", sim.Config{
			Method: sim.MethodRMetis, K: 4, RepartitionEvery: 14 * 24 * time.Hour,
		}},
		{"R-METIS every week", sim.Config{
			Method: sim.MethodRMetis, K: 4, RepartitionEvery: 7 * 24 * time.Hour,
		}},
		{"TR-METIS (default thresholds)", sim.Config{
			Method: sim.MethodTRMetis, K: 4,
		}},
		{"TR-METIS (tight thresholds)", sim.Config{
			Method: sim.MethodTRMetis, K: 4,
			CutThreshold: 0.5, BalanceThreshold: 1.8,
		}},
	}

	var rows [][]string
	for _, p := range policies {
		res, err := sim.Replay(gt, p.cfg)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, []string{
			p.label,
			fmt.Sprintf("%d", res.Repartitions),
			report.FormatCount(res.TotalMoves),
			report.FormatCount(res.TotalMovedSlots),
			report.FormatFloat(res.OverallDynamicCut),
			report.FormatFloat(res.OverallDynamicBalance),
		})
	}
	if err := report.Table(os.Stdout, []string{
		"policy", "repartitions", "moves", "moved slots", "dyn cut", "dyn balance",
	}, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMoving a vertex means moving its whole state (a contract's entire")
	fmt.Println("storage); the threshold policy fires only when quality degrades and")
	fmt.Println("so relocates far less state for similar cut and balance.")
}
