// Opsim: the paper's edge-cut, made operational. A synthetic Ethereum
// history is generated once; then, for every partitioning method, the same
// records are replayed twice in lockstep — through the abstract simulator
// (which places first-seen accounts and fires its repartitioning policy)
// and through a live sharded chain (k real per-shard states executing real
// transactions). The simulator's repartitions become real work on the
// chain: batched state migrations under the migration model, re-homed
// future placements under the receipts model. The edge-cut column and the
// operational columns come out of the same run, so the proxy claim can be
// read off a single table.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"ethpart/internal/experiments"
	"ethpart/internal/report"
	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
	"ethpart/internal/workload"
)

func main() {
	// One month of history, small enough for a few seconds of runtime.
	eras := []workload.Era{{
		Name:          "boom",
		Start:         time.Date(2017, 5, 1, 0, 0, 0, 0, time.UTC),
		End:           time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC),
		TxPerDayStart: 20_000, TxPerDayEnd: 40_000, Kind: workload.GrowthExponential,
		NewAccountFrac: 0.25, DeploysPerDay: 10,
		Mix: workload.TxMix{Transfer: 0.55, Token: 0.2, Wallet: 0.1, Crowdsale: 0.06, Game: 0.04, Airdrop: 0.05},
	}}
	ds, err := experiments.NewDataset(experiments.Params{
		Seed: 42, Scale: 0.01, Eras: eras,
		BlockInterval:    time.Hour,
		RepartitionEvery: 7 * 24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	const k = 4
	fmt.Printf("history: %s interactions, replaying through %d live shards\n\n",
		report.FormatCount(int64(len(ds.GT.Records))), k)

	rows, err := ds.Operational(k)
	if err != nil {
		log.Fatal(err)
	}
	var out [][]string
	for _, row := range rows {
		res := row.Result
		latency := "-"
		if res.Totals.ReceiptsSettled > 0 {
			latency = fmt.Sprintf("%.2f", res.MeanSettlement())
		}
		out = append(out, []string{
			row.Method.String(), row.Model.String(),
			report.FormatFloat(res.Sim.OverallDynamicCut),
			fmt.Sprintf("%.1f%%", 100*res.CrossFraction()),
			report.FormatCount(res.Totals.Messages),
			latency,
			report.FormatCount(res.Totals.Migrations),
			report.FormatCount(res.Totals.MigratedSlots),
		})
	}
	if err := report.Table(os.Stdout, []string{
		"method", "model", "dyn-cut", "cross-txs", "messages", "latency(blk)", "migrations", "slots",
	}, out); err != nil {
		log.Fatal(err)
	}

	// Pull out the headline comparison: hashing vs METIS under receipts.
	find := func(m sim.Method, model shardchain.Model) *experiments.OperationalRow {
		for i := range rows {
			if rows[i].Method == m && rows[i].Model == model {
				return &rows[i]
			}
		}
		return nil
	}
	hash := find(sim.MethodHash, shardchain.ModelReceipts)
	metis := find(sim.MethodMetis, shardchain.ModelReceipts)
	fmt.Printf("\nUnder async receipts, METIS's lower cut (%.3f vs %.3f) becomes\n",
		metis.Result.Sim.OverallDynamicCut, hash.Result.Sim.OverallDynamicCut)
	fmt.Printf("%s cross-shard messages vs %s for hashing — the cut is a real\n",
		report.FormatCount(metis.Result.Totals.Messages),
		report.FormatCount(hash.Result.Totals.Messages))
	fmt.Println("proxy for settlement traffic. Under state migration, compare the")
	fmt.Println("migration and slots columns instead: repartitioning methods pay for")
	fmt.Println("their better cut in bulk-moved state, the trade-off the paper's")
	fmt.Println("move counts gesture at, measured here in actual storage slots.")
}
