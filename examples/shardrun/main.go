// Shardrun: actually run a sharded blockchain. A training phase builds the
// interaction graph and partitions it (hash vs multilevel); an execution
// phase then routes live transactions through k real shard chains under
// both multi-shard models (async receipts vs state migration) and reports
// what the paper's edge-cut number turns into operationally: cross-shard
// messages, settlement latency and migrated state.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"ethpart/internal/chain"
	"ethpart/internal/evm"
	"ethpart/internal/graph"
	"ethpart/internal/partition"
	"ethpart/internal/partition/multilevel"
	"ethpart/internal/report"
	"ethpart/internal/shardchain"
	"ethpart/internal/types"
	"ethpart/internal/workload"
)

const (
	users  = 300
	k      = 4
	blocks = 60
	txsPer = 50
)

// world holds the shared scenario: users with community-skewed token usage.
type world struct {
	rng    *rand.Rand
	users  []types.Address
	home   []int // user -> favourite token index
	tokens []types.Address
}

// newWorld builds the user population.
func newWorld(seed int64) *world {
	w := &world{rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < users; i++ {
		w.users = append(w.users, types.AddressFromSeq(uint64(100+i)))
		w.home = append(w.home, w.rng.Intn(k))
	}
	return w
}

// genTx produces one transaction: mostly same-community token transfers,
// sometimes plain transfers to a random user.
func (w *world) genTx(nonces map[types.Address]uint64) *chain.Transaction {
	ui := w.rng.Intn(users)
	user := w.users[ui]
	nonce := nonces[user]
	nonces[user]++
	if w.rng.Float64() < 0.7 {
		token := w.tokens[w.home[ui]]
		peer := w.users[w.rng.Intn(users)]
		var data [64]byte
		pb := evm.WordFromBytes(peer[:]).Bytes32()
		ab := evm.WordFromUint64(uint64(1 + w.rng.Intn(50))).Bytes32()
		copy(data[0:32], pb[:])
		copy(data[32:64], ab[:])
		return &chain.Transaction{
			Nonce: nonce, From: user, To: &token,
			Data: data[:], GasLimit: 300_000, GasPrice: 1,
		}
	}
	peer := w.users[w.rng.Intn(users)]
	return &chain.Transaction{
		Nonce: nonce, From: user, To: &peer,
		Value: evm.WordFromUint64(uint64(100 + w.rng.Intn(1_000))), GasLimit: 100_000, GasPrice: 1,
	}
}

func main() {
	// ---- Training phase: build the graph on a single chain. ----
	w := newWorld(11)
	deployer := types.AddressFromSeq(1)
	alloc := map[types.Address]evm.Word{deployer: evm.WordFromUint64(1 << 50)}
	for _, u := range w.users {
		alloc[u] = evm.WordFromUint64(1 << 30)
	}
	single := chain.NewChain(chain.DefaultConfig(), alloc)
	miner := types.AddressFromSeq(2)
	for i := 0; i < k; i++ {
		tx := &chain.Transaction{
			Nonce: uint64(i), From: deployer,
			Data: evm.DeployWrapper(workload.TokenRuntime()), GasLimit: 5_000_000, GasPrice: 1,
		}
		_, receipts, skipped := single.BuildBlock(miner, int64(i), []*chain.Transaction{tx})
		if len(skipped) > 0 || !receipts[0].Success {
			log.Fatal("token deploy failed")
		}
		w.tokens = append(w.tokens, *receipts[0].ContractAddress)
	}

	g := graph.New()
	addrID := map[types.Address]graph.VertexID{}
	idAddr := map[graph.VertexID]types.Address{}
	vid := func(a types.Address) graph.VertexID {
		if id, ok := addrID[a]; ok {
			return id
		}
		id := graph.VertexID(len(addrID))
		addrID[a] = id
		idAddr[id] = a
		return id
	}
	kindOf := func(a types.Address) graph.Kind {
		if len(single.State().GetCode(a)) > 0 {
			return graph.KindContract
		}
		return graph.KindAccount
	}
	nonces := map[types.Address]uint64{}
	for b := 0; b < blocks; b++ {
		var txs []*chain.Transaction
		for t := 0; t < txsPer; t++ {
			txs = append(txs, w.genTx(nonces))
		}
		_, receipts, skipped := single.BuildBlock(miner, int64(1000+b), txs)
		if len(skipped) > 0 {
			log.Fatalf("training skipped txs: %v", skipped[0])
		}
		for _, r := range receipts {
			for _, tr := range r.Traces {
				if err := g.AddInteraction(vid(tr.From), vid(tr.To),
					kindOf(tr.From), kindOf(tr.To), 1); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	fmt.Printf("training graph: %d vertices, %d edges\n\n", g.VertexCount(), g.EdgeCount())

	// ---- Partition the training graph two ways. ----
	csr := graph.NewCSR(g)
	assignments := map[string]func(types.Address) (int, bool){}
	hashParts, err := partition.Hash{}.Partition(csr, k)
	if err != nil {
		log.Fatal(err)
	}
	mlParts, err := multilevel.New(multilevel.Config{Seed: 7}).Partition(csr, k)
	if err != nil {
		log.Fatal(err)
	}
	toAssign := func(parts []int) func(types.Address) (int, bool) {
		m := map[types.Address]int{}
		for i, id := range csr.IDs {
			m[idAddr[id]] = parts[i]
		}
		return func(a types.Address) (int, bool) {
			s, ok := m[a]
			return s, ok
		}
	}
	assignments["hash"] = toAssign(hashParts)
	assignments["multilevel"] = toAssign(mlParts)

	// ---- Execution phase: same future workload on real shards. ----
	var rows [][]string
	for _, name := range []string{"hash", "multilevel"} {
		for _, model := range []shardchain.Model{shardchain.ModelReceipts, shardchain.ModelMigration} {
			// Rebuild the identical scenario (fresh RNG, fresh nonces).
			w2 := newWorld(11)
			w2.tokens = w.tokens
			sc, err := shardchain.New(shardchain.Config{K: k, Model: model, Chain: chain.DefaultConfig()},
				alloc, assignments[name])
			if err != nil {
				log.Fatal(err)
			}
			// Install the token contracts on their assigned shards.
			for _, token := range w.tokens {
				st := sc.StateOf(sc.HomeOf(token))
				st.SetCode(token, single.State().GetCode(token))
				st.DiscardJournal()
			}
			nonces := map[types.Address]uint64{}
			for b := 0; b < blocks; b++ {
				var txs []*chain.Transaction
				for t := 0; t < txsPer; t++ {
					txs = append(txs, w2.genTx(nonces))
				}
				sc.Step(txs)
			}
			sc.Step(nil) // settle trailing receipts
			st := sc.Stats()
			total := st.LocalTxs + st.CrossTxs
			meanLatency := "-"
			if st.ReceiptsSettled > 0 {
				meanLatency = fmt.Sprintf("%.2f", float64(st.SettlementBlocks)/float64(st.ReceiptsSettled))
			}
			rows = append(rows, []string{
				name, model.String(),
				fmt.Sprintf("%.1f%%", 100*float64(st.CrossTxs)/float64(total)),
				report.FormatCount(st.Messages),
				meanLatency,
				report.FormatCount(st.Migrations),
				report.FormatCount(st.MigratedSlots),
				report.FormatCount(st.Failed),
			})
		}
	}
	if err := report.Table(os.Stdout, []string{
		"partition", "model", "cross-txs", "messages", "latency(blk)", "migrations", "slots", "failed",
	}, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nThe multilevel partition turns most transactions local: fewer")
	fmt.Println("cross-shard messages under receipts, fewer account migrations under")
	fmt.Println("state movement — the edge-cut metric made operational.")
}
