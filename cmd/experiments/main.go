// Command experiments regenerates the paper's figures from a synthetic
// Ethereum history. Each subcommand prints a human-readable rendering to
// stdout and, with -csv, writes machine-readable CSV files.
//
// Usage:
//
//	experiments [flags] fig1|fig2|fig3|fig4|fig5|costs|shardaware|decaycost|scalecost|scenariocost|all
//
// Flags:
//
//	-seed N      history seed (default 1)
//	-scale F     workload scale (default 0.004)
//	-scenario S  generate the history from a named open-loop scenario
//	             (tracegen -list names them) instead of the era schedule
//	-arrival A   override the scenario's arrival process (poisson|diurnal|flash)
//	-csv DIR     also write CSV files into DIR
//	-method M    fig3 method: hash|kl|metis|r-metis|tr-metis (default both
//	             hash and metis, as in the paper)
//	-decay-half-life D  windowed graph decay half-life (0 = full history,
//	             as in the paper); bounds live-graph size on long traces
//	-horizon D   decay retention horizon (0 = 4x the half-life)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"ethpart/internal/experiments"
	"ethpart/internal/report"
	"ethpart/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "history seed")
	scale := fs.Float64("scale", 0.004, "workload scale")
	scenario := fs.String("scenario", "", "generate the history from a named library scenario instead of the era schedule")
	arrival := fs.String("arrival", "", "override the scenario's arrival process: poisson|diurnal|flash")
	hours := fs.Float64("hours", 0, "scenariocost: override every scenario's arrival duration (hours)")
	csvDir := fs.String("csv", "", "directory for CSV output (optional)")
	method := fs.String("method", "", "fig3 method (default: hash and metis)")
	k := fs.Int("k", 4, "shard count for the extension subcommands")
	kmin := fs.Int("k-min", 2, "scalecost: smallest shard count (fixed baseline and autoscaler floor)")
	kmax := fs.Int("k-max", 8, "scalecost: largest shard count (fixed baseline and autoscaler ceiling)")
	decay := fs.Duration("decay-half-life", 0, "enable windowed graph decay with this half-life (0 = full history, as in the paper)")
	horizon := fs.Duration("horizon", 0, "decay retention horizon (0 = 4x the half-life)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected one subcommand: fig1|fig2|fig3|fig4|fig5|costs|shardaware|decaycost|scalecost|scenariocost|all")
	}
	cmd := fs.Arg(0)

	// shardaware, decaycost, scalecost and scenariocost generate their own
	// histories.
	if cmd == "shardaware" {
		return shardaware(*seed, *scale, output{dir: *csvDir}, *k, *decay, *horizon)
	}
	if cmd == "decaycost" {
		return decaycost(*seed, output{dir: *csvDir}, *k, *decay, *horizon)
	}
	if cmd == "scalecost" {
		return scalecost(*seed, output{dir: *csvDir}, *kmin, *kmax)
	}
	if cmd == "scenariocost" {
		return scenariocost(*seed, output{dir: *csvDir}, *k, *hours)
	}

	if *scenario != "" {
		fmt.Printf("generating scenario history (scenario=%s seed=%d)...\n", *scenario, *seed)
	} else {
		fmt.Printf("generating synthetic history (seed=%d scale=%g)...\n", *seed, *scale)
	}
	start := time.Now()
	ds, err := experiments.NewDataset(experiments.Params{
		Seed: *seed, Scale: *scale,
		Scenario: *scenario, Arrival: *arrival,
		DecayHalfLife: *decay, Horizon: *horizon,
	})
	if err != nil {
		return err
	}
	fmt.Printf("history ready in %v: %s interactions, %s vertices\n\n",
		time.Since(start).Round(time.Millisecond),
		report.FormatCount(int64(len(ds.GT.Records))),
		report.FormatCount(int64(ds.GT.Registry.Len())))

	out := output{dir: *csvDir}
	switch cmd {
	case "fig1":
		return fig1(ds, out)
	case "fig2":
		return fig2(ds)
	case "fig3":
		return fig3(ds, out, *method)
	case "fig4":
		return fig4(ds, out)
	case "fig5":
		return fig5(ds, out)
	case "costs":
		return costs(ds, out, *k)
	case "all":
		// Warm the result cache with one parallel sweep over every
		// method × k the figures need (fig3 uses k=2, fig4 k∈{2,8},
		// fig5 k∈{2,4,8}); the figure renderers then serve from cache.
		if err := ds.Prefetch([]int{2, 4, 8}); err != nil {
			return err
		}
		for _, f := range []func() error{
			func() error { return fig1(ds, out) },
			func() error { return fig2(ds) },
			func() error { return fig3(ds, out, *method) },
			func() error { return fig4(ds, out) },
			func() error { return fig5(ds, out) },
		} {
			if err := f(); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// output optionally writes CSVs next to the stdout rendering.
type output struct{ dir string }

func (o output) csv(name string, headers []string, rows [][]string) error {
	if o.dir == "" {
		return nil
	}
	if err := os.MkdirAll(o.dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(o.dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.CSV(f, headers, rows); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", filepath.Join(o.dir, name))
	return nil
}

func fig1(ds *experiments.Dataset, out output) error {
	fmt.Println("=== Fig 1: Ethereum graph evolution (vertices and edges per month) ===")
	rows, eras, err := ds.Fig1()
	if err != nil {
		return err
	}
	var verts, edges []float64
	var table [][]string
	for _, r := range rows {
		verts = append(verts, float64(r.Vertices))
		edges = append(edges, float64(r.Edges))
		table = append(table, []string{
			r.Month.Format("01.06"),
			report.FormatCount(r.Vertices),
			report.FormatCount(r.Edges),
		})
	}
	if err := report.Table(os.Stdout, []string{"month", "vertices", "edges"}, table); err != nil {
		return err
	}
	fmt.Printf("\n  vertices (log): %s\n", report.SparklineLog(verts))
	fmt.Printf("  edges    (log): %s\n", report.SparklineLog(edges))
	for _, e := range eras {
		fmt.Printf("  era %-10s %s -> %s\n", e.Name,
			e.Start.Format("01.06"), e.End.Format("01.06"))
	}
	split := time.Date(2016, 11, 1, 0, 0, 0, 0, time.UTC)
	pre, post, err := experiments.Fig1GrowthFit(rows, split)
	if err == nil {
		fmt.Printf("  edge growth rate: %.3f/month pre-attack (exponential), %.3f/month after (slower)\n", pre, post)
	}
	return out.csv("fig1.csv", []string{"month", "vertices", "edges"}, table)
}

func fig2(ds *experiments.Dataset) error {
	fmt.Println("=== Fig 2: example subgraph (DOT) ===")
	return ds.Fig2(os.Stdout, 24)
}

func fig3(ds *experiments.Dataset, out output, methodFlag string) error {
	methods := []sim.Method{sim.MethodHash, sim.MethodMetis}
	if methodFlag != "" {
		m, err := sim.ParseMethod(methodFlag)
		if err != nil {
			return err
		}
		methods = []sim.Method{m}
	}
	for _, m := range methods {
		fmt.Printf("=== Fig 3: %v, k=2, 4-hour windows ===\n", m)
		res, err := ds.Fig3(m)
		if err != nil {
			return err
		}
		var dynCut, dynBal, statCut, statBal []float64
		var rows [][]string
		for _, w := range res.Windows {
			dynCut = append(dynCut, w.DynamicCut)
			dynBal = append(dynBal, w.DynamicBalance)
			statCut = append(statCut, w.StaticCut)
			statBal = append(statBal, w.StaticBalance)
			rows = append(rows, []string{
				w.Start.Format("2006-01-02T15"),
				report.FormatFloat(w.DynamicCut),
				report.FormatFloat(w.StaticCut),
				report.FormatFloat(w.DynamicBalance),
				report.FormatFloat(w.StaticBalance),
				strconv.FormatInt(w.Moves, 10),
			})
		}
		fmt.Printf("  dynamic cut:     %s\n", sampled(dynCut))
		fmt.Printf("  static  cut:     %s\n", sampled(statCut))
		fmt.Printf("  dynamic balance: %s\n", sampled(dynBal))
		fmt.Printf("  static  balance: %s\n", sampled(statBal))
		fmt.Printf("  windows=%d repartitions=%d moves=%s\n",
			len(res.Windows), res.Repartitions, report.FormatCount(res.TotalMoves))
		name := fmt.Sprintf("fig3_%v.csv", m)
		if err := out.csv(name,
			[]string{"window", "dyn_cut", "static_cut", "dyn_balance", "static_balance", "moves"},
			rows); err != nil {
			return err
		}
	}
	return nil
}

// sampled down-samples a series to 100 sparkline columns.
func sampled(values []float64) string {
	const cols = 100
	if len(values) <= cols {
		return report.Sparkline(values)
	}
	out := make([]float64, cols)
	for i := 0; i < cols; i++ {
		lo := i * len(values) / cols
		hi := (i + 1) * len(values) / cols
		var sum float64
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return report.Sparkline(out)
}

func fig4(ds *experiments.Dataset, out output) error {
	fmt.Println("=== Fig 4: method comparison over 2017 periods (k=2 and k=8) ===")
	cells, err := ds.Fig4([]int{2, 8})
	if err != nil {
		return err
	}
	var rows [][]string
	for _, c := range cells {
		rows = append(rows, []string{
			strconv.Itoa(c.K), c.Method.String(), c.Period,
			report.FormatFloat(c.CutStats.Median),
			report.FormatFloat(c.CutStats.Q1), report.FormatFloat(c.CutStats.Q3),
			report.FormatFloat(c.BalStats.Median),
			report.FormatFloat(c.BalStats.Q1), report.FormatFloat(c.BalStats.Q3),
			report.FormatCount(c.Moves),
		})
	}
	if err := report.Table(os.Stdout, []string{
		"k", "method", "period",
		"cut_med", "cut_q1", "cut_q3",
		"bal_med", "bal_q1", "bal_q3", "moves",
	}, rows); err != nil {
		return err
	}
	// Box plots per k for the dynamic cut.
	for _, k := range []int{2, 8} {
		fmt.Printf("\n  dynamic edge-cut, k=%d (range 0..1):\n", k)
		for _, c := range cells {
			if c.K != k || c.Period != "01.17-06.17" {
				continue
			}
			fmt.Printf("    %-9s %s\n", c.Method, report.BoxPlot(c.CutStats, 0, 1, 50))
		}
	}
	return out.csv("fig4.csv", []string{
		"k", "method", "period", "cut_med", "cut_q1", "cut_q3",
		"bal_med", "bal_q1", "bal_q3", "moves",
	}, rows)
}

func fig5(ds *experiments.Dataset, out output) error {
	fmt.Println("=== Fig 5: shard-count sweep (k = 2, 4, 8) ===")
	rows5, err := ds.Fig5([]int{2, 4, 8})
	if err != nil {
		return err
	}
	var rows [][]string
	for _, r := range rows5 {
		rows = append(rows, []string{
			r.Method.String(), strconv.Itoa(r.K),
			report.FormatFloat(r.DynamicCut),
			report.FormatFloat(r.NormBalance),
			report.FormatCount(r.Moves),
			report.FormatCount(r.MovedSlots),
		})
	}
	if err := report.Table(os.Stdout, []string{
		"method", "k", "dyn_cut", "norm_balance", "moves", "moved_slots",
	}, rows); err != nil {
		return err
	}
	return out.csv("fig5.csv", []string{
		"method", "k", "dyn_cut", "norm_balance", "moves", "moved_slots",
	}, rows)
}
