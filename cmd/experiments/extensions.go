package main

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"ethpart/internal/costmodel"
	"ethpart/internal/experiments"
	"ethpart/internal/report"
)

// costs prices every method under both multi-shard execution models — the
// "computation, storage and bandwidth" extension from the paper's final
// remarks — at datacenter and wide-area message prices.
func costs(ds *experiments.Dataset, out output, k int) error {
	headers := []string{"pricing", "model", "method", "execution", "coordination", "relocation", "imbalance", "total"}
	var table [][]string
	for _, pricing := range []struct {
		name   string
		params costmodel.Params
	}{
		{"datacenter", costmodel.DefaultParams()},
		{"wide-area", costmodel.WANParams()},
	} {
		rows, err := ds.CostComparisonWith(k, pricing.params)
		if err != nil {
			return err
		}
		for _, r := range rows {
			b := r.Breakdown
			table = append(table, []string{
				pricing.name, r.Model.String(), r.Method.String(),
				report.FormatFloat(b.Execution),
				report.FormatFloat(b.Coordination),
				report.FormatFloat(b.Relocation),
				report.FormatFloat(b.Imbalance),
				report.FormatFloat(b.Total()),
			})
		}
	}
	fmt.Printf("=== Extension: resource costs per method (k=%d) ===\n", k)
	if err := report.Table(os.Stdout, headers, table); err != nil {
		return err
	}
	fmt.Println("\n  coordination prices cross-shard transactions; relocation prices")
	fmt.Println("  repartitioning moves (vertices + storage slots); imbalance prices")
	fmt.Println("  capacity stranded in idle shards. Wide-area pricing multiplies")
	fmt.Println("  message cost 10x, shifting the optimum toward low-cut methods.")
	return out.csv("costs.csv", headers, table)
}

// shardaware reruns the method comparison on a community-local workload —
// the "applications will be designed in a different way" extension. The
// decay flags apply to both halves of the comparison identically.
func shardaware(seed int64, scale float64, out output, k int, decay, horizon time.Duration) error {
	fmt.Printf("=== Extension: shard-aware workload (k=%d communities, locality 0.95) ===\n", k)
	fmt.Println("generating baseline and shard-aware histories...")
	params := experiments.DefaultShardAwareParams(seed, scale)
	params.DecayHalfLife = decay
	params.Horizon = horizon
	rows, err := experiments.ShardAware(params, k, 0.95)
	if err != nil {
		return err
	}
	var table [][]string
	for _, r := range rows {
		improvement := "-"
		if r.BaselineCut > 0 {
			improvement = strconv.FormatFloat(100*(1-r.AwareCut/r.BaselineCut), 'f', 1, 64) + "%"
		}
		table = append(table, []string{
			r.Method.String(),
			report.FormatFloat(r.BaselineCut),
			report.FormatFloat(r.AwareCut),
			improvement,
			report.FormatFloat(r.BaselineBal),
			report.FormatFloat(r.AwareBal),
		})
	}
	headers := []string{"method", "cut (today)", "cut (shard-aware)", "cut reduction", "bal (today)", "bal (shard-aware)"}
	if err := report.Table(os.Stdout, headers, table); err != nil {
		return err
	}
	fmt.Println("\n  When applications keep interactions community-local, the")
	fmt.Println("  placement-aware methods can follow the structure and the cut")
	fmt.Println("  collapses; hashing cannot exploit it and stays near (k-1)/k.")
	return out.csv("shardaware.csv", headers, table)
}
