package main

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"ethpart/internal/costmodel"
	"ethpart/internal/experiments"
	"ethpart/internal/report"
)

// costs prices every method under both multi-shard execution models — the
// "computation, storage and bandwidth" extension from the paper's final
// remarks — at datacenter and wide-area message prices.
func costs(ds *experiments.Dataset, out output, k int) error {
	headers := []string{"pricing", "model", "method", "execution", "coordination", "relocation", "imbalance", "total"}
	var table [][]string
	for _, pricing := range []struct {
		name   string
		params costmodel.Params
	}{
		{"datacenter", costmodel.DefaultParams()},
		{"wide-area", costmodel.WANParams()},
	} {
		rows, err := ds.CostComparisonWith(k, pricing.params)
		if err != nil {
			return err
		}
		for _, r := range rows {
			b := r.Breakdown
			table = append(table, []string{
				pricing.name, r.Model.String(), r.Method.String(),
				report.FormatFloat(b.Execution),
				report.FormatFloat(b.Coordination),
				report.FormatFloat(b.Relocation),
				report.FormatFloat(b.Imbalance),
				report.FormatFloat(b.Total()),
			})
		}
	}
	fmt.Printf("=== Extension: resource costs per method (k=%d) ===\n", k)
	if err := report.Table(os.Stdout, headers, table); err != nil {
		return err
	}
	fmt.Println("\n  coordination prices cross-shard transactions; relocation prices")
	fmt.Println("  repartitioning moves (vertices + storage slots); imbalance prices")
	fmt.Println("  capacity stranded in idle shards. Wide-area pricing multiplies")
	fmt.Println("  message cost 10x, shifting the optimum toward low-cut methods.")
	return out.csv("costs.csv", headers, table)
}

// decaycost runs the operational decay comparison — the roadmap's missing
// figure: migration cost with and without windowed decay over a
// drifting-era history, through the live chain under the migration model.
// The wave columns isolate what repartition waves moved; the totals
// include the model's traffic-driven inline migrations.
func decaycost(seed int64, out output, k int, decay, horizon time.Duration) error {
	params := experiments.DecayParams{Seed: seed, K: k, HalfLife: decay, Horizon: horizon}
	fmt.Printf("=== Extension: migration cost with vs without decay (drifting eras, k=%d, migration model) ===\n", k)
	rows, err := experiments.DecayOperational(params)
	if err != nil {
		return err
	}
	headers := []string{
		"method", "mode", "repartitions", "moves", "wave_migrations",
		"wave_slots", "migrations", "migrated_slots", "messages", "dyn_cut",
		"live_vertices",
	}
	var table [][]string
	for _, r := range rows {
		mode := "full-history"
		if r.Decay {
			mode = "decay"
		}
		table = append(table, []string{
			r.Method.String(), mode,
			strconv.Itoa(r.Repartitions),
			report.FormatCount(r.Moves),
			report.FormatCount(r.WaveMigrations),
			report.FormatCount(r.WaveSlots),
			report.FormatCount(r.Migrations),
			report.FormatCount(r.MigratedSlots),
			report.FormatCount(r.Messages),
			report.FormatFloat(r.DynamicCut),
			strconv.Itoa(r.LiveVertices),
		})
	}
	if err := report.Table(os.Stdout, headers, table); err != nil {
		return err
	}
	fmt.Println("\n  Every era retires the previous era's active set. Full-history")
	fmt.Println("  repartitioners keep re-deciding (and re-migrating) dead accounts;")
	fmt.Println("  decay partitions only the live set, so waves move less state and")
	fmt.Println("  the live graph stays bounded by the retention horizon.")
	return out.csv("decaycost.csv", headers, table)
}

// scalecost runs the elastic-shard-count comparison — cost (shard-windows
// provisioned) against SLO (saturation, cross-shard traffic, settlement)
// on a flash-crowd history, for fixed provisioning at k-min and k-max and
// for the saturation-driven autoscaler ranging between them.
func scalecost(seed int64, out output, kmin, kmax int) error {
	fmt.Printf("=== Extension: provisioning cost vs SLO on a flash crowd (k-min=%d, k-max=%d, receipts model) ===\n", kmin, kmax)
	rows, err := experiments.ScaleOperational(experiments.ScaleParams{Seed: seed, KMin: kmin, KMax: kmax})
	if err != nil {
		return err
	}
	headers := []string{
		"mode", "k_start", "k_final", "resizes", "shard_windows", "peak_load",
		"messages", "latency(blk)", "migrations", "migrated_slots", "failed",
		"dyn_cut",
	}
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{
			r.Mode,
			strconv.Itoa(r.KStart),
			strconv.Itoa(r.KFinal),
			strconv.Itoa(r.Resizes),
			strconv.FormatInt(r.ShardWindows, 10),
			strconv.FormatInt(r.PeakWindowLoad, 10),
			report.FormatCount(r.Messages),
			fmt.Sprintf("%.2f", r.MeanSettlement),
			report.FormatCount(r.Migrations),
			report.FormatCount(r.MigratedSlots),
			report.FormatCount(r.Failed),
			report.FormatFloat(r.DynamicCut),
		})
	}
	if err := report.Table(os.Stdout, headers, table); err != nil {
		return err
	}
	fmt.Println("\n  Fixed-small saturates during the crowd (peak load), fixed-large")
	fmt.Println("  pays for idle shards the whole run (shard-windows). The autoscaler")
	fmt.Println("  splits when the surge crosses its high-water mark and merges the")
	fmt.Println("  extra shards away once the crowd leaves, buying most of the relief")
	fmt.Println("  at a fraction of the standing cost.")
	return out.csv("scalecost.csv", headers, table)
}

// scenariocost runs the open-loop scenario comparison: the full
// method × multi-shard-model matrix on each named workload scenario,
// reporting the operational metrics the paper's edge-cut curves proxy.
// The point of the figure: method rankings that hold on the historical
// era trace are re-tested across workload shapes — steady, diurnal and
// flash-crowd arrivals over different contract archetypes.
func scenariocost(seed int64, out output, k int, hours float64) error {
	fmt.Printf("=== Extension: method × model matrix across open-loop scenarios (k=%d) ===\n", k)
	rows, err := experiments.ScenarioCost(experiments.ScenarioCostParams{Seed: seed, K: k, Hours: hours})
	if err != nil {
		return err
	}
	headers := []string{
		"scenario", "model", "method", "records", "dyn_cut", "messages",
		"latency(blk)", "wave_migrations", "wave_slots", "migrations",
		"migrated_slots", "failed",
	}
	var table [][]string
	for _, r := range rows {
		latency := "-"
		if r.MeanSettlement > 0 {
			latency = fmt.Sprintf("%.2f", r.MeanSettlement)
		}
		table = append(table, []string{
			r.Scenario, r.Model.String(), r.Method.String(),
			report.FormatCount(int64(r.Records)),
			report.FormatFloat(r.DynamicCut),
			report.FormatCount(r.Messages),
			latency,
			report.FormatCount(r.WaveMigrations),
			report.FormatCount(r.WaveSlots),
			report.FormatCount(r.Migrations),
			report.FormatCount(r.MigratedSlots),
			report.FormatCount(r.Failed),
		})
	}
	if err := report.Table(os.Stdout, headers, table); err != nil {
		return err
	}
	fmt.Println("\n  Each scenario is one open-loop composition (arrival × population")
	fmt.Println("  × mix) from the workload library; every method replays the same")
	fmt.Println("  per-scenario trace under both multi-shard models. Hub-heavy and")
	fmt.Println("  flash-crowd shapes separate the methods far more than the steady")
	fmt.Println("  transfer baseline does.")
	return out.csv("scenariocost.csv", headers, table)
}

// shardaware reruns the method comparison on a community-local workload —
// the "applications will be designed in a different way" extension. The
// decay flags apply to both halves of the comparison identically.
func shardaware(seed int64, scale float64, out output, k int, decay, horizon time.Duration) error {
	fmt.Printf("=== Extension: shard-aware workload (k=%d communities, locality 0.95) ===\n", k)
	fmt.Println("generating baseline and shard-aware histories...")
	params := experiments.DefaultShardAwareParams(seed, scale)
	params.DecayHalfLife = decay
	params.Horizon = horizon
	rows, err := experiments.ShardAware(params, k, 0.95)
	if err != nil {
		return err
	}
	var table [][]string
	for _, r := range rows {
		improvement := "-"
		if r.BaselineCut > 0 {
			improvement = strconv.FormatFloat(100*(1-r.AwareCut/r.BaselineCut), 'f', 1, 64) + "%"
		}
		table = append(table, []string{
			r.Method.String(),
			report.FormatFloat(r.BaselineCut),
			report.FormatFloat(r.AwareCut),
			improvement,
			report.FormatFloat(r.BaselineBal),
			report.FormatFloat(r.AwareBal),
		})
	}
	headers := []string{"method", "cut (today)", "cut (shard-aware)", "cut reduction", "bal (today)", "bal (shard-aware)"}
	if err := report.Table(os.Stdout, headers, table); err != nil {
		return err
	}
	fmt.Println("\n  When applications keep interactions community-local, the")
	fmt.Println("  placement-aware methods can follow the structure and the cut")
	fmt.Println("  collapses; hashing cannot exploit it and stays near (k-1)/k.")
	return out.csv("shardaware.csv", headers, table)
}
