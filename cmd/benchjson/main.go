// Command benchjson converts `go test -bench` text output into
// machine-readable JSON artifacts. It reads a benchmark transcript on
// stdin and writes one BENCH_<package>.json file per benchmarked package
// into -dir, so CI can archive and diff benchmark results without
// scraping the human-oriented text format.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run '^$' ./... | tee bench.txt
//	go run ./cmd/benchjson -dir . < bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one benchmark run: the full sub-benchmark name as Go
// prints it (minus the -GOMAXPROCS suffix), the iteration count, and
// every reported metric keyed by its unit — the standard ns/op, B/op and
// allocs/op alongside any custom b.ReportMetric units.
type BenchResult struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// PackageResults groups the runs of one package, as delimited by the
// `pkg:` header lines go test emits.
type PackageResults struct {
	Package    string        `json:"package"`
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	Cpu        string        `json:"cpu,omitempty"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// parseBench consumes a `go test -bench` transcript and returns the
// per-package results in order of first appearance. Non-benchmark lines
// (PASS, ok, test logs) are ignored; a malformed Benchmark line is an
// error rather than a silent drop, so a format drift in go test breaks
// CI loudly instead of producing empty artifacts.
func parseBench(r io.Reader) ([]PackageResults, error) {
	var (
		out  []PackageResults
		cur  *PackageResults
		meta = map[string]string{}
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			meta[k] = strings.TrimSpace(v)
			// go test prints cpu: after pkg:; backfill the open package.
			if cur != nil {
				cur.Goos, cur.Goarch, cur.Cpu = meta["goos"], meta["goarch"], meta["cpu"]
			}
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			out = append(out, PackageResults{
				Package: strings.TrimSpace(v),
				Goos:    meta["goos"],
				Goarch:  meta["goarch"],
				Cpu:     meta["cpu"],
			})
			cur = &out[len(out)-1]
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			if cur == nil {
				// A transcript without pkg: headers (e.g. piped through a
				// filter): collect under an unnamed package.
				out = append(out, PackageResults{Package: "unknown"})
				cur = &out[len(out)-1]
			}
			cur.Benchmarks = append(cur.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Drop packages that had a pkg: header but no benchmarks (pure test
	// packages show up in ./... transcripts).
	kept := out[:0]
	for _, p := range out {
		if len(p.Benchmarks) > 0 {
			kept = append(kept, p)
		}
	}
	return kept, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName/sub=x-8   123   45.6 ns/op   7 B/op   0 allocs/op   2.0 custom-unit
//
// i.e. name-procs, iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (BenchResult, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields)%2 != 0 {
		return BenchResult{}, fmt.Errorf("benchjson: malformed benchmark line %q", line)
	}
	name := fields[0]
	procs := 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, fmt.Errorf("benchjson: bad iteration count in %q: %v", line, err)
	}
	metrics := make(map[string]float64, (len(fields)-2)/2)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return BenchResult{}, fmt.Errorf("benchjson: bad metric value in %q: %v", line, err)
		}
		metrics[fields[i+1]] = v
	}
	return BenchResult{Name: name, Procs: procs, Iterations: iters, Metrics: metrics}, nil
}

// artifactName maps a package import path to its BENCH_*.json filename:
// slashes, dots and dashes collapse to underscores so the name is safe
// as a single path element on every platform CI runs on.
func artifactName(pkg string) string {
	s := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, pkg)
	return "BENCH_" + s + ".json"
}

// writeArtifacts emits one JSON file per package into dir and returns
// the filenames written, sorted.
func writeArtifacts(dir string, pkgs []PackageResults) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var names []string
	for _, p := range pkgs {
		name := artifactName(p.Package)
		data, err := json.MarshalIndent(p, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func main() {
	dir := flag.String("dir", ".", "directory to write BENCH_*.json artifacts into")
	flag.Parse()
	pkgs, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	names, err := writeArtifacts(*dir, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	total := 0
	for _, p := range pkgs {
		total += len(p.Benchmarks)
	}
	fmt.Printf("benchjson: %d benchmarks across %d packages -> %s\n",
		total, len(pkgs), strings.Join(names, " "))
}
