package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sample is a trimmed real transcript: two benchmarked packages with
// custom ReportMetric units, a pure-test package in between, and the
// PASS/ok noise go test interleaves.
const sample = `goos: linux
goarch: amd64
pkg: ethpart/internal/graph
cpu: Test CPU @ 2.00GHz
BenchmarkQuietWindowSweep/mode=scheduled/live=2000-8     	       1	        68.00 ns/op	         0 B/op	       0 allocs/op	         0 touched/sweep	      2000 live-vertices
BenchmarkQuietWindowSweep/mode=eager/live=20000-8        	       1	    365000 ns/op	         0 B/op	       0 allocs/op	     40000 touched/sweep	     20000 live-vertices
BenchmarkCSRRebuildAfterRetirement/live=256/maxid=20480-8	       1	     13900 ns/op	     11536 B/op	       6 allocs/op	       256 live-vertices	     20480 max-id
PASS
ok  	ethpart/internal/graph	1.234s
ok  	ethpart/internal/partition	0.100s
pkg: ethpart
BenchmarkDecayRepartition/mode=decay-8	       1	   5000000 ns/op
PASS
ok  	ethpart	2.000s
`

func TestParseBench(t *testing.T) {
	pkgs, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	g := pkgs[0]
	if g.Package != "ethpart/internal/graph" || g.Goos != "linux" || g.Cpu != "Test CPU @ 2.00GHz" {
		t.Fatalf("bad package header: %+v", g)
	}
	if len(g.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks in graph, want 3", len(g.Benchmarks))
	}
	b := g.Benchmarks[0]
	if b.Name != "BenchmarkQuietWindowSweep/mode=scheduled/live=2000" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be stripped)", b.Name)
	}
	if b.Procs != 8 || b.Iterations != 1 {
		t.Errorf("procs/iters = %d/%d, want 8/1", b.Procs, b.Iterations)
	}
	if b.Metrics["ns/op"] != 68 || b.Metrics["allocs/op"] != 0 ||
		b.Metrics["live-vertices"] != 2000 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	// Custom ReportMetric units survive on the CSR bench too.
	csr := g.Benchmarks[2]
	if csr.Metrics["max-id"] != 20480 || csr.Metrics["live-vertices"] != 256 {
		t.Errorf("csr metrics = %v", csr.Metrics)
	}
	if pkgs[1].Package != "ethpart" || len(pkgs[1].Benchmarks) != 1 {
		t.Errorf("root package results = %+v", pkgs[1])
	}
}

func TestParseBenchRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-8",               // no iteration count
		"BenchmarkX-8 12 ns/op",      // odd metric fields
		"BenchmarkX-8 notanumber ns", // bad count
	} {
		if _, err := parseBench(strings.NewReader("pkg: p\n" + bad + "\n")); err == nil {
			t.Errorf("parseBench accepted malformed line %q", bad)
		}
	}
}

func TestWriteArtifacts(t *testing.T) {
	pkgs, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	names, err := writeArtifacts(dir, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BENCH_ethpart.json", "BENCH_ethpart_internal_graph.json"}
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("artifacts = %v, want %v", names, want)
	}
	// Round-trip: the artifact decodes back to the parsed results.
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_ethpart_internal_graph.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got PackageResults
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Package != "ethpart/internal/graph" || len(got.Benchmarks) != 3 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if got.Benchmarks[1].Metrics["touched/sweep"] != 40000 {
		t.Errorf("eager touched/sweep = %v", got.Benchmarks[1].Metrics)
	}
}
