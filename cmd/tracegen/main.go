// Command tracegen generates a synthetic Ethereum interaction trace and
// writes it in the study's dataset format (CSV or JSONL) — the reproduction
// of the paper's published dataset.
//
// Usage:
//
//	tracegen -out trace.csv [-seed 1] [-scale 0.004] [-format csv|jsonl]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"ethpart/internal/report"
	"ethpart/internal/sim"
	"ethpart/internal/trace"
	"ethpart/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	out := fs.String("out", "", "output file (required; '-' for stdout)")
	seed := fs.Int64("seed", 1, "history seed")
	scale := fs.Float64("scale", 0.004, "workload scale (1.0 ≈ the paper's full trace)")
	format := fs.String("format", "csv", "output format: csv or jsonl")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	start := time.Now()
	gt, err := sim.Generate(workload.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s interactions, %s vertices in %v\n",
		report.FormatCount(int64(len(gt.Records))),
		report.FormatCount(int64(gt.Registry.Len())),
		time.Since(start).Round(time.Millisecond))

	var w *os.File
	if *out == "-" {
		w = os.Stdout
	} else {
		w, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	bw := bufio.NewWriterSize(w, 1<<20)

	switch *format {
	case "csv":
		cw := trace.NewCSVWriter(bw)
		for _, rec := range gt.Records {
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		if err := cw.Flush(); err != nil {
			return err
		}
	case "jsonl":
		if err := trace.WriteJSONL(bw, gt.Records); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return bw.Flush()
}
