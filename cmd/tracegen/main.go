// Command tracegen generates a synthetic Ethereum interaction trace and
// writes it in the study's dataset format (CSV or JSONL) — the reproduction
// of the paper's published dataset. Besides the era-based history it can
// generate any composition from the named scenario library (open-loop
// arrival × population × mix), validate scenarios without generating, and
// describe the library.
//
// Usage:
//
//	tracegen -out trace.csv [-seed 1] [-scale 0.004] [-format csv|jsonl]
//	tracegen -scenario flash-nft-mint -out trace.csv.gz [-hours 48]
//	tracegen -list
//	tracegen -describe flash-nft-mint
//	tracegen -validate flash-nft-mint
//
// Output ending in .gz is gzip-compressed; every ethpart tool reads it
// transparently.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ethpart/internal/report"
	"ethpart/internal/sim"
	"ethpart/internal/trace"
	"ethpart/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	out := fs.String("out", "", "output file (required; '-' for stdout, .gz for gzip)")
	seed := fs.Int64("seed", 1, "history seed")
	scale := fs.Float64("scale", 0.004, "era workload scale (1.0 ≈ the paper's full trace)")
	format := fs.String("format", "csv", "output format: csv or jsonl")
	scenario := fs.String("scenario", "", "generate a named library scenario instead of the era history")
	hours := fs.Float64("hours", 0, "override the scenario's arrival duration (hours)")
	list := fs.Bool("list", false, "list the scenario library and exit")
	describe := fs.String("describe", "", "describe a named scenario and exit")
	validate := fs.String("validate", "", "validate a named scenario and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *list:
		for _, sc := range workload.Scenarios() {
			fmt.Fprintf(stdout, "%-20s %s\n", sc.Name, sc.Description)
		}
		return nil
	case *describe != "":
		sc, err := workload.LookupScenario(*describe)
		if err != nil {
			return err
		}
		describeScenario(stdout, sc)
		return nil
	case *validate != "":
		sc, err := workload.LookupScenario(*validate)
		if err != nil {
			return err
		}
		if err := sc.Validate(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: ok\n", sc.Name)
		return nil
	}

	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	start := time.Now()
	var (
		gt  *sim.GeneratedTrace
		err error
	)
	if *scenario != "" {
		sc, lerr := workload.LookupScenario(*scenario)
		if lerr != nil {
			return lerr
		}
		sc.Seed = *seed
		if *hours > 0 {
			sc.Arrival.Duration = time.Duration(*hours * float64(time.Hour))
		}
		gt, err = sim.GenerateScenario(sc)
	} else {
		gt, err = sim.Generate(workload.Config{Seed: *seed, Scale: *scale})
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s interactions, %s vertices in %v\n",
		report.FormatCount(int64(len(gt.Records))),
		report.FormatCount(int64(gt.Registry.Len())),
		time.Since(start).Round(time.Millisecond))

	w, err := trace.CreateFile(*out)
	if err != nil {
		return err
	}
	switch *format {
	case "csv":
		cw := trace.NewCSVWriter(w)
		for _, rec := range gt.Records {
			if err := cw.Write(rec); err != nil {
				w.Close()
				return err
			}
		}
		if err := cw.Flush(); err != nil {
			w.Close()
			return err
		}
	case "jsonl":
		if err := trace.WriteJSONL(w, gt.Records); err != nil {
			w.Close()
			return err
		}
	default:
		w.Close()
		return fmt.Errorf("unknown format %q", *format)
	}
	return w.Close()
}

// describeScenario prints the full composition of one scenario.
func describeScenario(w io.Writer, sc workload.Scenario) {
	fmt.Fprintf(w, "%s — %s\n", sc.Name, sc.Description)
	a := sc.Arrival
	fmt.Fprintf(w, "  arrival:    %s, %.0f/h base", a.Kind, a.RatePerHour)
	switch a.Kind {
	case workload.ArrivalDiurnal:
		fmt.Fprintf(w, ", amplitude %.2f, period %v", a.Amplitude, a.Period)
	case workload.ArrivalFlash:
		fmt.Fprintf(w, ", %.0f× spike over [%.2f, %.2f] of the run",
			a.PeakFactor, a.PeakStart, a.PeakStart+a.PeakWidth)
	}
	fmt.Fprintf(w, ", %v from %s\n", a.Duration, a.Start.Format("2006-01-02"))
	p := sc.Population
	fmt.Fprintf(w, "  population: hot-account prob %.2f, recency bias %.2f, new-account frac %.2f\n",
		p.HotProb, p.RecencyBias, sc.NewAccountFrac)
	m := sc.Mix
	parts := []struct {
		name string
		w    float64
	}{
		{"transfer", m.Transfer}, {"token", m.Token}, {"wallet", m.Wallet},
		{"crowdsale", m.Crowdsale}, {"game", m.Game}, {"airdrop", m.Airdrop},
		{"crud", m.CRUD}, {"exchange", m.Exchange}, {"nft-mint", m.NFTMint},
	}
	total := 0.0
	for _, part := range parts {
		total += part.w
	}
	fmt.Fprintf(w, "  mix:       ")
	for _, part := range parts {
		if part.w > 0 {
			fmt.Fprintf(w, " %s %.0f%%", part.name, 100*part.w/total)
		}
	}
	fmt.Fprintln(w)
}
