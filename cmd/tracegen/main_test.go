package main

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"ethpart/internal/trace"
	"ethpart/internal/workload"
)

// countCSVRecords opens path (gzip-transparently) and counts its records.
func countCSVRecords(t *testing.T, path string) int {
	t.Helper()
	f, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := trace.NewCSVReader(f)
	var n int
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		if rec.From == rec.To && rec.Kind == 0 {
			t.Fatalf("nonsense record: %+v", rec)
		}
		n++
	}
	return n
}

func TestRunRequiresOut(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Fatal("missing -out must error")
	}
}

func TestRunRejectsBadFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.bin")
	err := run([]string{"-out", out, "-scale", "0.0002", "-format", "xml"}, io.Discard)
	if err == nil {
		t.Fatal("bad format must error")
	}
}

func TestGenerateCSVTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.csv")
	if err := run([]string{"-out", out, "-scale", "0.0002", "-seed", "3"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if n := countCSVRecords(t, out); n < 1000 {
		t.Fatalf("only %d records generated", n)
	}
}

func TestGenerateScenarioGzipTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.csv.gz")
	args := []string{"-out", out, "-scenario", "transfer-steady", "-hours", "24", "-seed", "5"}
	if err := run(args, io.Discard); err != nil {
		t.Fatal(err)
	}
	if n := countCSVRecords(t, out); n < 100 {
		t.Fatalf("only %d records generated", n)
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.csv")
	if err := run([]string{"-out", out, "-scenario", "nope"}, io.Discard); err == nil {
		t.Fatal("unknown scenario must error")
	}
}

func TestListDescribeValidate(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range workload.ScenarioNames() {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("-list output missing %q", name)
		}
	}
	buf.Reset()
	if err := run([]string{"-describe", "flash-nft-mint"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flash", "nft-mint", "spike"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("-describe output missing %q in:\n%s", want, buf.String())
		}
	}
	buf.Reset()
	if err := run([]string{"-validate", "crud-diurnal"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ok") {
		t.Errorf("-validate output = %q, want ok", buf.String())
	}
}
