package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"ethpart/internal/trace"
)

func TestRunRequiresOut(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing -out must error")
	}
}

func TestRunRejectsBadFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.bin")
	err := run([]string{"-out", out, "-scale", "0.0002", "-format", "xml"})
	if err == nil {
		t.Fatal("bad format must error")
	}
}

func TestGenerateCSVTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.csv")
	if err := run([]string{"-out", out, "-scale", "0.0002", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := trace.NewCSVReader(f)
	var n int
	for {
		rec, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		if rec.From == rec.To && rec.Kind == 0 {
			t.Fatalf("nonsense record: %+v", rec)
		}
		n++
	}
	if n < 1000 {
		t.Fatalf("only %d records generated", n)
	}
}
