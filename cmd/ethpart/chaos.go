package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"ethpart/internal/experiments"
	"ethpart/internal/fault"
	"ethpart/internal/opsim"
	"ethpart/internal/report"
	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
	"ethpart/internal/workload"
)

// runChaos executes the chaos subcommand: the seeded fault-scenario
// library over a drifting-era trace. Every scenario replays the same
// trace through the operational co-simulation with a fault schedule armed
// — shard crash-stops recovered from the durable log, receipt storms of
// drops/delays/duplicates, stalled epoch flips with transient commit
// failures — and cross-checks the outcome against a fault-free oracle
// run: totals, per-shard state roots, the home map and every transaction
// receipt must converge byte-identical, and no torn directory commit may
// ever be observed. It exits non-zero on any invariant violation.
func runChaos(args []string) error {
	fs := flag.NewFlagSet("ethpart chaos", flag.ContinueOnError)
	scenarioFlag := fs.String("scenario", "all", "fault scenario: crash-wave|receipt-loss|dup-storm|flip-stall|mixed|all")
	workloadFlag := fs.String("workload", "", "inject faults into a named library workload scenario instead of the drifting-era trace")
	arrival := fs.String("arrival", "", "override the workload scenario's arrival process: poisson|diurnal|flash")
	hours := fs.Float64("hours", 0, "override the workload scenario's arrival duration (hours)")
	seed := fs.Int64("seed", 1, "trace and fault-schedule seed")
	k := fs.Int("k", 4, "number of shards")
	methodFlag := fs.String("method", "tr-metis", "repartitioning method (waves feed the flip-stall scenarios)")
	eras := fs.Int("eras", 6, "drifting eras in the trace")
	windows := fs.Int("windows-per-era", 6, "4-hour windows per era")
	parallel := fs.Bool("parallel", false, "run the chain on the parallel per-shard engine")
	netMode := fs.Bool("net", false, "replicate directory commits to replica processes over loopback TCP")
	netReplicas := fs.Int("replicas", 2, "replica process count (with -net); each gets its own fault plane")
	csvOut := fs.Bool("csv", false, "emit CSV instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workloadFlag == "" && (*arrival != "" || *hours != 0) {
		return fmt.Errorf("chaos: -arrival/-hours require -workload")
	}
	method, err := sim.ParseMethod(*methodFlag)
	if err != nil {
		return err
	}

	var gt *sim.GeneratedTrace
	if *workloadFlag != "" {
		sc, err := workload.ResolveScenario(*workloadFlag, *arrival, *hours, *seed)
		if err != nil {
			return err
		}
		// Block the scenario at the drifting-era trace's spacing so the
		// chaos policy parameters below (windows, repartition cadence)
		// keep their meaning.
		sc.BlockInterval = 2 * time.Hour
		if gt, err = sim.GenerateScenario(sc); err != nil {
			return err
		}
	} else {
		gt = experiments.DecayTrace(experiments.DecayParams{
			Seed: *seed, K: *k, Eras: *eras, WindowsPerEra: *windows,
		})
	}
	// An upper bound on chain height: the trace's blocks plus the settle
	// drain; crash schedules may reach into the drain.
	traceBlocks := uint64(48)
	if n := len(gt.Records); n > 0 {
		traceBlocks += gt.Records[n-1].Block + 1
	}

	baseCfg := func() opsim.Config {
		return opsim.Config{
			Sim: sim.Config{
				Method: method, K: *k,
				Window:            4 * time.Hour,
				RepartitionEvery:  2 * 24 * time.Hour,
				MinRepartitionGap: 24 * time.Hour,
				TriggerWindows:    2,
				CutThreshold:      0.2,
				BalanceThreshold:  1.5,
				DecayHalfLife:     12 * time.Hour,
			},
			Model:    shardchain.ModelReceipts,
			Parallel: *parallel,
			Capture:  true,
			// Budget for injected backoff chains: a dropped receipt can take
			// MaxAttempts tries with capped exponential backoff before its
			// forced delivery.
			MaxSettleSteps: 600,
		}
	}

	scenarios, err := chaosScenarios(*scenarioFlag, uint64(*seed), traceBlocks, *k)
	if err != nil {
		return err
	}

	fmt.Printf("oracle: replaying %s records fault-free (k=%d, %s, receipts model)\n",
		report.FormatCount(int64(len(gt.Records))), *k, method)
	oracle, err := opsim.Run(gt, baseCfg())
	if err != nil {
		return fmt.Errorf("chaos: oracle run: %w", err)
	}

	headers := []string{
		"scenario", "crashes", "replayed", "recover(us)", "dropped", "delayed",
		"dups", "suppressed", "stalls", "stale-blk", "max-lag", "torn", "violations",
	}
	if *netMode {
		headers = append(headers, "r-applied", "r-stalls", "r-torn")
	}
	var rows [][]string
	totalViolations := 0
	for _, sc := range scenarios {
		inj, err := fault.New(sc.sched)
		if err != nil {
			return fmt.Errorf("chaos: scenario %s: %w", sc.name, err)
		}
		cfg := baseCfg()
		cfg.Fault = inj
		var cn *chaosNet
		if *netMode {
			// Replicate the scenario's directory commits to replica processes
			// over real sockets; each replica applies through its own fault
			// plane (derived seed) and must still converge to the oracle view.
			if cn, err = startChaosNet(*netReplicas, sc.sched); err != nil {
				return fmt.Errorf("chaos: scenario %s: %w", sc.name, err)
			}
			cfg.DirCommitter = cn.committer
		}
		res, err := opsim.Run(gt, cfg)
		if err != nil {
			if cn != nil {
				cn.close()
			}
			return fmt.Errorf("chaos: scenario %s: %w", sc.name, err)
		}
		violations := compareToOracle(oracle, res)
		var netStats chaosNetStats
		if cn != nil {
			var nv []string
			netStats, nv = cn.finish(res.DirectoryView)
			violations = append(violations, nv...)
		}
		totalViolations += len(violations)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "chaos: %s: INVARIANT VIOLATION: %s\n", sc.name, v)
		}
		m := res.Fault
		recoverUS := "0"
		if m.Crashes > 0 {
			recoverUS = fmt.Sprintf("%.1f", float64(m.RecoveryNanos)/float64(m.Crashes)/1e3)
		}
		row := []string{
			sc.name,
			strconv.FormatUint(m.Crashes, 10),
			strconv.FormatUint(m.ItemsReplayed, 10),
			recoverUS,
			strconv.FormatUint(m.Dropped, 10),
			strconv.FormatUint(m.Delayed, 10),
			strconv.FormatUint(m.Duplicated, 10),
			strconv.FormatUint(m.DupsSuppressed, 10),
			strconv.FormatUint(m.WaveStalls, 10),
			strconv.FormatUint(m.StaleBlocks, 10),
			strconv.FormatUint(m.MaxEpochLag, 10),
			strconv.FormatUint(m.TornCommits, 10),
			strconv.Itoa(len(violations)),
		}
		if *netMode {
			row = append(row,
				strconv.FormatUint(netStats.applied, 10),
				strconv.FormatUint(netStats.waveStalls, 10),
				strconv.FormatUint(netStats.torn, 10),
			)
		}
		rows = append(rows, row)
	}

	if *csvOut {
		if err := report.CSV(os.Stdout, headers, rows); err != nil {
			return err
		}
	} else {
		if err := report.Table(os.Stdout, headers, rows); err != nil {
			return err
		}
	}
	if totalViolations > 0 {
		return fmt.Errorf("chaos: %d invariant violation(s)", totalViolations)
	}
	if *netMode {
		fmt.Printf("\nall scenarios converged byte-identical to the fault-free oracle; zero invariant violations\n"+
			"every replica view (%d per scenario, own fault planes) matched the oracle entry-by-entry; zero torn epochs\n",
			*netReplicas)
		return nil
	}
	fmt.Println("\nall scenarios converged byte-identical to the fault-free oracle; zero invariant violations")
	return nil
}

// chaosScenario is one named fault schedule.
type chaosScenario struct {
	name  string
	sched fault.Schedule
}

// chaosScenarios builds the scenario library (or the one selected).
func chaosScenarios(sel string, seed, blocks uint64, k int) ([]chaosScenario, error) {
	all := []chaosScenario{
		{"crash-wave", fault.Schedule{
			Seed:    seed,
			Shards:  k,
			Crashes: fault.PeriodicCrashes(5, blocks, k),
		}},
		{"receipt-loss", fault.Schedule{
			Seed:     seed,
			Shards:   k,
			DropProb: 0.25, DelayProb: 0.2,
		}},
		{"dup-storm", fault.Schedule{
			Seed:    seed,
			Shards:  k,
			DupProb: 0.5, DelayProb: 0.1, ShuffleDeliveries: true,
		}},
		{"flip-stall", fault.Schedule{
			Seed:             seed,
			Shards:           k,
			WaveStallFlushes: 40, CommitFailEvery: 3,
		}},
		{"mixed", fault.Schedule{
			Seed:     seed,
			Shards:   k,
			Crashes:  fault.PeriodicCrashes(7, blocks, k),
			DropProb: 0.15, DelayProb: 0.1, DupProb: 0.2,
			ShuffleDeliveries: true,
			WaveStallFlushes:  25, CommitFailEvery: 5,
		}},
	}
	if sel == "all" || sel == "" {
		return all, nil
	}
	for _, sc := range all {
		if sc.name == sel {
			return []chaosScenario{sc}, nil
		}
	}
	return nil, fmt.Errorf("chaos: unknown scenario %q (crash-wave|receipt-loss|dup-storm|flip-stall|mixed|all)", sel)
}

// compareToOracle checks the convergence invariants of a faulty run
// against the fault-free oracle. Per-window stats are deliberately not
// compared: an injected delay legitimately shifts a settlement into a
// later window; the run-level totals (with the injected share of latency
// subtracted at settlement) must still match exactly.
func compareToOracle(oracle, res *opsim.Result) []string {
	var v []string
	if oracle.Replayed != res.Replayed {
		v = append(v, fmt.Sprintf("replayed %d records, oracle %d", res.Replayed, oracle.Replayed))
	}
	if oracle.Totals != res.Totals {
		v = append(v, fmt.Sprintf("stats diverge: %+v, oracle %+v", res.Totals, oracle.Totals))
	}
	if len(oracle.StateRoots) != len(res.StateRoots) {
		v = append(v, "state root count diverges")
	} else {
		for s := range oracle.StateRoots {
			if oracle.StateRoots[s] != res.StateRoots[s] {
				v = append(v, fmt.Sprintf("shard %d state root diverges: %s, oracle %s",
					s, res.StateRoots[s], oracle.StateRoots[s]))
			}
		}
	}
	if oracle.HomesHash != res.HomesHash {
		v = append(v, "home map diverges")
	}
	if oracle.ReceiptsHash != res.ReceiptsHash {
		v = append(v, "transaction receipts diverge")
	}
	if res.Fault != nil && res.Fault.TornCommits > 0 {
		v = append(v, fmt.Sprintf("%d torn directory commits observed", res.Fault.TornCommits))
	}
	return v
}
