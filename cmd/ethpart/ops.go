package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"ethpart/internal/experiments"
	"ethpart/internal/report"
	"ethpart/internal/sim"
)

// runOps executes the ops subcommand: generate a seeded workload, replay it
// through a live sharded chain for every method under both multi-shard
// models, and report per-window and total operational metrics. With
// -parallel the replay also runs on the parallel per-shard engine and the
// table gains its per-block speedup over serial (the replayed metrics
// themselves are byte-identical by construction, and verified to be).
func runOps(args []string) error {
	fs := flag.NewFlagSet("ethpart ops", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "workload seed")
	scale := fs.Float64("scale", 0.002, "workload scale")
	scenario := fs.String("scenario", "", "replay a named library scenario instead of the era history")
	arrival := fs.String("arrival", "", "override the scenario's arrival process: poisson|diurnal|flash")
	k := fs.Int("k", 2, "number of shards")
	window := fs.Duration("window", 4*time.Hour, "metric window")
	repartition := fs.Duration("repartition", 14*24*time.Hour, "repartition period")
	blockInterval := fs.Duration("block", 2*time.Hour, "simulated block interval")
	csvOut := fs.Bool("csv", false, "emit per-window CSV instead of the summary table")
	parallel := fs.Bool("parallel", false, "also run the parallel per-shard engine and report its per-block speedup")
	decay := fs.Duration("decay-half-life", 0, "enable windowed graph decay with this half-life (0 = full history)")
	horizon := fs.Duration("horizon", 0, "decay retention horizon (0 = 4x the half-life)")
	autoscale := fs.Bool("autoscale", false, "let the saturation controller resize the shard count at window boundaries")
	kmin := fs.Int("k-min", 0, "autoscaler floor (0 = 1)")
	kmax := fs.Int("k-max", 0, "autoscaler ceiling (0 = 4x k)")
	targetLoad := fs.Int64("target-load", 0, "autoscaler per-shard window-load target (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateDecayFlags(*decay, *horizon); err != nil {
		return err
	}
	if *k < 1 {
		return fmt.Errorf("ops: k must be >= 1, got %d", *k)
	}
	if *scenario == "" && *arrival != "" {
		return fmt.Errorf("ops: -arrival requires -scenario")
	}
	var ac sim.AutoscaleConfig
	if *autoscale {
		ac = sim.AutoscaleConfig{
			Enabled:          true,
			KMin:             *kmin,
			KMax:             *kmax,
			TargetWindowLoad: *targetLoad,
		}
		if ac.KMin > 0 && ac.KMin > *k {
			return fmt.Errorf("ops: -k-min %d exceeds -k %d", ac.KMin, *k)
		}
		if ac.KMax > 0 && ac.KMax < *k {
			return fmt.Errorf("ops: -k-max %d is below -k %d", ac.KMax, *k)
		}
	} else if *kmin != 0 || *kmax != 0 || *targetLoad != 0 {
		return fmt.Errorf("ops: -k-min/-k-max/-target-load require -autoscale")
	}

	start := time.Now()
	ds, err := experiments.NewDataset(experiments.Params{
		Seed:             *seed,
		Scale:            *scale,
		Scenario:         *scenario,
		Arrival:          *arrival,
		BlockInterval:    *blockInterval,
		Window:           *window,
		RepartitionEvery: *repartition,
		DecayHalfLife:    *decay,
		Horizon:          *horizon,
		Autoscale:        ac,
	})
	if err != nil {
		return err
	}
	rows, err := ds.Operational(*k)
	if err != nil {
		return err
	}
	var prows []experiments.OperationalRow
	if *parallel {
		if prows, err = ds.OperationalParallel(*k); err != nil {
			return err
		}
		// The two engines are byte-identical by contract; hold the CLI to it.
		for i := range rows {
			if rows[i].Result.Totals != prows[i].Result.Totals {
				return fmt.Errorf("ops: parallel engine diverged from serial on %v/%v",
					rows[i].Method, rows[i].Model)
			}
		}
	}
	if *csvOut {
		if *parallel {
			return opsCSV(os.Stdout, prows)
		}
		return opsCSV(os.Stdout, rows)
	}
	fmt.Printf("replayed %s interactions × %d method/model runs in %v\n\n",
		report.FormatCount(int64(len(ds.GT.Records))), len(rows),
		time.Since(start).Round(time.Millisecond))
	return opsTable(os.Stdout, rows, prows)
}

// opsTable renders the summary matrix: one row per method × model. ms/blk
// is always the serial engine's per-block cost; when parallel rows are
// present, par-ms/blk and speedup put the parallel engine beside it.
func opsTable(w io.Writer, rows, prows []experiments.OperationalRow) error {
	var out [][]string
	for i, row := range rows {
		res := row.Result
		latency := "-"
		if res.Totals.ReceiptsSettled > 0 {
			latency = fmt.Sprintf("%.2f", res.MeanSettlement())
		}
		// Shard-windows provisioned over the run — with the autoscaler this
		// is the capacity-cost series summed; without it, windows × k.
		var shardWindows int64
		for _, win := range res.Windows {
			shardWindows += int64(win.Shards)
		}
		cols := []string{
			row.Method.String(),
			row.Model.String(),
			report.FormatFloat(res.Sim.OverallDynamicCut),
			fmt.Sprintf("%.1f%%", 100*res.CrossFraction()),
			report.FormatCount(res.Totals.Messages),
			latency,
			report.FormatCount(res.Totals.Migrations),
			report.FormatCount(res.Totals.MigratedSlots),
			report.FormatCount(res.Totals.Failed),
			report.FormatCount(shardWindows),
			strconv.Itoa(len(res.Sim.Resizes)),
		}
		cols = append(cols, fmt.Sprintf("%.3f", res.MsPerBlock()))
		if prows != nil {
			pres := prows[i].Result
			speedup := "-"
			if pres.StepNanos > 0 {
				speedup = fmt.Sprintf("%.2fx", float64(res.StepNanos)/float64(pres.StepNanos))
			}
			cols = append(cols, fmt.Sprintf("%.3f", pres.MsPerBlock()), speedup)
		}
		out = append(out, cols)
	}
	headers := []string{
		"method", "model", "dyn-cut", "cross-txs", "messages", "latency(blk)",
		"migrations", "slots", "failed", "shrd-win", "resizes", "ms/blk",
	}
	if prows != nil {
		headers = append(headers, "par-ms/blk", "speedup")
	}
	return report.Table(w, headers, out)
}

// opsCSV emits every window of every run as one CSV stream. Windows in
// which nothing settled leave mean_settlement_blocks empty: the mean of
// zero settlements is undefined, and the raw quotient used to print NaN.
// The trailing sweep columns expose the decay hot path per window: live
// graph size when the window flushed, the wall-clock cost of the sweep
// that followed it, and whether the cut recount was skipped because the
// sweep was quiet. Runs without decay never sweep, so they report zero
// sweep time and every recount skipped.
func opsCSV(w io.Writer, rows []experiments.OperationalRow) error {
	headers := []string{
		"method", "model", "window_start", "shards", "interactions",
		"cross_txs", "messages", "receipts_settled", "mean_settlement_blocks",
		"migrations", "migrated_slots", "failed", "dynamic_cut",
		"live_graph", "sweep_ns", "recount_skipped",
	}
	var out [][]string
	for _, row := range rows {
		sweeps := map[int64]sim.SweepObs{}
		for _, so := range row.Result.Sweeps {
			sweeps[so.Start.Unix()] = so
		}
		for _, win := range row.Result.Windows {
			settlement := ""
			if win.ReceiptsSettled > 0 {
				settlement = fmt.Sprintf("%.3f", win.MeanSettlement())
			}
			liveGraph, sweepNs, skipped := "", "", ""
			if so, ok := sweeps[win.Start.Unix()]; ok {
				liveGraph = strconv.Itoa(so.LiveVertices)
				sweepNs = strconv.FormatInt(so.SweepNanos, 10)
				skipped = strconv.FormatBool(so.RecountSkipped)
			}
			out = append(out, []string{
				row.Method.String(),
				row.Model.String(),
				win.Start.UTC().Format(time.RFC3339),
				strconv.Itoa(win.Shards),
				strconv.FormatInt(win.Interactions, 10),
				strconv.FormatInt(win.CrossTxs, 10),
				strconv.FormatInt(win.Messages, 10),
				strconv.FormatInt(win.ReceiptsSettled, 10),
				settlement,
				strconv.FormatInt(win.Migrations, 10),
				strconv.FormatInt(win.MigratedSlots, 10),
				strconv.FormatInt(win.Failed, 10),
				fmt.Sprintf("%.6f", win.DynamicCut),
				liveGraph,
				sweepNs,
				skipped,
			})
		}
	}
	return report.CSV(w, headers, out)
}
