package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"ethpart/internal/experiments"
	"ethpart/internal/report"
)

// runOps executes the ops subcommand: generate a seeded workload, replay it
// through a live sharded chain for every method under both multi-shard
// models, and report per-window and total operational metrics.
func runOps(args []string) error {
	fs := flag.NewFlagSet("ethpart ops", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "workload seed")
	scale := fs.Float64("scale", 0.002, "workload scale")
	k := fs.Int("k", 2, "number of shards")
	window := fs.Duration("window", 4*time.Hour, "metric window")
	repartition := fs.Duration("repartition", 14*24*time.Hour, "repartition period")
	blockInterval := fs.Duration("block", 2*time.Hour, "simulated block interval")
	csvOut := fs.Bool("csv", false, "emit per-window CSV instead of the summary table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *k < 1 {
		return fmt.Errorf("ops: k must be >= 1, got %d", *k)
	}

	start := time.Now()
	ds, err := experiments.NewDataset(experiments.Params{
		Seed:             *seed,
		Scale:            *scale,
		BlockInterval:    *blockInterval,
		Window:           *window,
		RepartitionEvery: *repartition,
	})
	if err != nil {
		return err
	}
	rows, err := ds.Operational(*k)
	if err != nil {
		return err
	}
	if *csvOut {
		return opsCSV(os.Stdout, rows)
	}
	fmt.Printf("replayed %s interactions × %d method/model runs in %v\n\n",
		report.FormatCount(int64(len(ds.GT.Records))), len(rows),
		time.Since(start).Round(time.Millisecond))
	return opsTable(os.Stdout, rows)
}

// opsTable renders the summary matrix: one row per method × model.
func opsTable(w io.Writer, rows []experiments.OperationalRow) error {
	var out [][]string
	for _, row := range rows {
		res := row.Result
		latency := "-"
		if res.Totals.ReceiptsSettled > 0 {
			latency = fmt.Sprintf("%.2f", res.MeanSettlement())
		}
		out = append(out, []string{
			row.Method.String(),
			row.Model.String(),
			report.FormatFloat(res.Sim.OverallDynamicCut),
			fmt.Sprintf("%.1f%%", 100*res.CrossFraction()),
			report.FormatCount(res.Totals.Messages),
			latency,
			report.FormatCount(res.Totals.Migrations),
			report.FormatCount(res.Totals.MigratedSlots),
			report.FormatCount(res.Totals.Failed),
		})
	}
	return report.Table(w, []string{
		"method", "model", "dyn-cut", "cross-txs", "messages", "latency(blk)",
		"migrations", "slots", "failed",
	}, out)
}

// opsCSV emits every window of every run as one CSV stream.
func opsCSV(w io.Writer, rows []experiments.OperationalRow) error {
	headers := []string{
		"method", "model", "window_start", "interactions", "cross_txs",
		"messages", "receipts_settled", "mean_settlement_blocks",
		"migrations", "migrated_slots", "failed", "dynamic_cut",
	}
	var out [][]string
	for _, row := range rows {
		for _, win := range row.Result.Windows {
			out = append(out, []string{
				row.Method.String(),
				row.Model.String(),
				win.Start.UTC().Format(time.RFC3339),
				strconv.FormatInt(win.Interactions, 10),
				strconv.FormatInt(win.CrossTxs, 10),
				strconv.FormatInt(win.Messages, 10),
				strconv.FormatInt(win.ReceiptsSettled, 10),
				fmt.Sprintf("%.3f", win.MeanSettlement()),
				strconv.FormatInt(win.Migrations, 10),
				strconv.FormatInt(win.MigratedSlots, 10),
				strconv.FormatInt(win.Failed, 10),
				fmt.Sprintf("%.6f", win.DynamicCut),
			})
		}
	}
	return report.CSV(w, headers, out)
}
