package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ethpart/internal/directory"
	"ethpart/internal/dirserve"
	"ethpart/internal/graph"
	"ethpart/internal/report"
	"ethpart/internal/stats"
)

// benchDirNet is bench-dir's -net mode: the captured commit schedule drives
// the networked serving tier. For every (replica count, reader count) pair
// it stands up a primary front end plus N replica processes — goroutine-
// hosted listeners over loopback TCP — replicates commits through a
// dirserve.Fanout, and has readers issue snapshot-pinned batch lookups
// through dirserve clients against the whole fleet. Reported per row:
// lookup p50/p99 (exact histogram over real request round trips), the
// epoch-flip stall (local commit + replication enqueue), and the replica
// apply lag in epochs. Every run ends with a primary/replica convergence
// check; divergence or zero served lookups is an error.
func benchDirNet(sched *schedule, maxID graph.VertexID, replicaCounts, readers []int, d time.Duration, csvOut bool) error {
	headers := []string{
		"replicas", "readers", "lookups", "lookups/s", "p50(ns)", "p99(ns)",
		"stale", "repins", "commits", "flip-mean(us)", "flip-max(us)",
		"lag-max", "lag-mean", "entries", "cold", "promoted",
	}
	var rows [][]string
	for _, nr := range replicaCounts {
		for _, g := range readers {
			res, err := driveDirectoryNet(sched, maxID, nr, g, d)
			if err != nil {
				return fmt.Errorf("bench-dir: net %d replicas / %d readers: %w", nr, g, err)
			}
			rows = append(rows, []string{
				strconv.Itoa(nr),
				strconv.Itoa(g),
				report.FormatCount(res.lookups),
				report.FormatCount(int64(float64(res.lookups) / res.elapsed.Seconds())),
				strconv.FormatInt(res.p50, 10),
				strconv.FormatInt(res.p99, 10),
				report.FormatCount(res.stale),
				report.FormatCount(res.repins),
				report.FormatCount(res.commits),
				fmt.Sprintf("%.1f", res.flipMean.Seconds()*1e6),
				fmt.Sprintf("%.1f", res.flipMax.Seconds()*1e6),
				strconv.FormatUint(res.lagMax, 10),
				fmt.Sprintf("%.1f", res.lagMean),
				report.FormatCount(int64(res.stats.Entries)),
				report.FormatCount(int64(res.stats.Cold)),
				report.FormatCount(int64(res.stats.Promoted)),
			})
		}
	}
	if csvOut {
		return report.CSV(os.Stdout, headers, rows)
	}
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		return err
	}
	fmt.Printf("\n  p50/p99 are per-lookup averages over %d-ID batch round trips on\n", lookupBurst)
	fmt.Println("  real loopback sockets (exact log-scale histogram); flip stall is")
	fmt.Println("  local commit + replication enqueue; lag is the apply watermark")
	fmt.Println("  distance in epochs. Every row ends with a replica convergence check.")
	return nil
}

// netDriveResult is one (replicas, readers) measurement.
type netDriveResult struct {
	lookups  int64
	elapsed  time.Duration
	p50, p99 int64
	stale    int64
	repins   int64
	commits  int64
	flipMean time.Duration
	flipMax  time.Duration
	lagMax   uint64
	lagMean  float64
	stats    directory.Stats
}

// replicaProc is one goroutine-hosted replica process: its own directory,
// idempotent applier, hint ring and socket server.
type replicaProc struct {
	dir  *directory.Directory
	rp   *dirserve.Replica
	ring *directory.HintRing
	srv  *dirserve.Server
}

// startReplica stands up one replica process on a loopback listener.
func startReplica() (*replicaProc, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &replicaProc{
		dir:  directory.New(directory.Config{}),
		ring: directory.NewHintRing(1024),
	}
	p.rp = dirserve.NewReplica(p.dir)
	p.srv = dirserve.Serve(l, dirserve.ServerConfig{Dir: p.dir, Hints: p.ring, Replica: p.rp})
	return p, nil
}

// driveDirectoryNet replays the schedule through a replicating fan-out
// while g networked readers hammer batch lookups for at least d.
func driveDirectoryNet(sched *schedule, maxID graph.VertexID, nReplicas, g int, d time.Duration) (*netDriveResult, error) {
	primary := directory.New(directory.Config{})
	ring := directory.NewHintRing(4096)

	var reps []*replicaProc
	var addrs []string
	defer func() {
		for _, p := range reps {
			p.srv.Close()
		}
	}()
	for i := 0; i < nReplicas; i++ {
		p, err := startReplica()
		if err != nil {
			return nil, err
		}
		reps = append(reps, p)
		addrs = append(addrs, p.srv.Addr())
	}
	fan, err := dirserve.NewFanout(primary, ring, addrs...)
	if err != nil {
		return nil, err
	}

	primL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fan.Close()
		return nil, err
	}
	primSrv := dirserve.Serve(primL, dirserve.ServerConfig{Dir: primary, Hints: ring})
	defer primSrv.Close()
	fleet := append([]string{primSrv.Addr()}, addrs...)

	var stop atomic.Bool
	var firstErr atomic.Pointer[error]
	fail := func(err error) { firstErr.CompareAndSwap(nil, &err) }

	// Writer: replay the schedule through the fan-out (local commit + ship
	// to every replica), draining promotion hints into each commit's
	// Promote lane the way the publisher does. Commit time — local flip
	// plus replication enqueue — is the networked epoch-flip stall.
	var commits int64
	var flipTotal, flipMax time.Duration
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		seen := make(map[graph.VertexID]struct{})
		for pass := 0; ; pass++ {
			for _, ev := range sched.events {
				if pass > 0 && !ev.wave {
					continue // later passes replay only the wave traffic
				}
				b := ev.batch
				if !ring.Empty() {
					clear(seen)
					var promote []graph.VertexID
					ring.Drain(func(v graph.VertexID) {
						if _, dup := seen[v]; dup {
							return
						}
						seen[v] = struct{}{}
						promote = append(promote, v)
					})
					b.Promote = promote // fresh slice: safe to ship async
				}
				start := time.Now()
				if _, err := fan.CommitBatch(b, ev.wave); err != nil {
					fail(err)
					return
				}
				el := time.Since(start)
				commits++
				flipTotal += el
				if el > flipMax {
					flipMax = el
				}
				if stop.Load() {
					return
				}
			}
			if stop.Load() {
				return
			}
		}
	}()

	// Readers: each owns a client dialled to the whole fleet and issues
	// snapshot-pinned batch lookups; the batch round trip is timed and its
	// per-lookup average recorded. Pins age out of the primary's journal
	// under write load, so readers exercise the evict → resolve re-pin
	// path continuously; lagging replicas exercise the behind-skip path.
	var wg sync.WaitGroup
	counts := make([]int64, g)
	hists := make([]*stats.LatencyHist, g)
	staleCounts := make([]int64, g)
	repinCounts := make([]int64, g)
	start := time.Now()
	for r := 0; r < g; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			hist := new(stats.LatencyHist)
			hists[r] = hist
			c, err := dirserve.Dial(fleet...)
			if err != nil {
				fail(err)
				return
			}
			defer c.Close()
			ids := make([]graph.VertexID, lookupBurst)
			out := make([]int32, lookupBurst)
			state := uint64(r)*0x9e3779b97f4a7c15 + 1
			next := func() uint64 {
				state = state*6364136223846793005 + 1442695040888963407
				return state >> 33
			}
			var n int64
			for !stop.Load() {
				for i := range ids {
					ids[i] = graph.VertexID(next() % uint64(maxID))
				}
				t0 := time.Now()
				if _, _, err := c.LookupBatch(ids, out); err != nil {
					if !stop.Load() {
						fail(err)
					}
					break
				}
				hist.Record(time.Since(t0).Nanoseconds() / lookupBurst)
				n += lookupBurst
			}
			counts[r] = n
			staleCounts[r] = c.StaleBatches
			repinCounts[r] = c.Repins
		}(r)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	<-writerDone
	elapsed := time.Since(start)

	// Flush the feeds (every queued shipment acked) before reading lag and
	// comparing views.
	if err := fan.Close(); err != nil {
		return nil, err
	}
	if errp := firstErr.Load(); errp != nil {
		return nil, *errp
	}

	res := &netDriveResult{elapsed: elapsed, commits: commits, flipMax: flipMax, stats: primary.Stats()}
	merged := new(stats.LatencyHist)
	for r := 0; r < g; r++ {
		res.lookups += counts[r]
		res.stale += staleCounts[r]
		res.repins += repinCounts[r]
		merged.Merge(hists[r])
	}
	res.p50 = merged.Quantile(0.50)
	res.p99 = merged.Quantile(0.99)
	if commits > 0 {
		res.flipMean = flipTotal / time.Duration(commits)
	}
	var lagSum float64
	for _, fs := range fan.FeedStats() {
		if fs.LagMax > res.lagMax {
			res.lagMax = fs.LagMax
		}
		lagSum += fs.LagMean
	}
	if len(reps) > 0 {
		res.lagMean = lagSum / float64(len(reps))
	}
	if res.lookups == 0 {
		return nil, fmt.Errorf("zero lookups served")
	}

	// Convergence: after the feeds drain, every replica's view must match
	// the primary's entry-for-entry.
	want := primary.Current()
	for i, p := range reps {
		if p.rp.Applied() != want.Epoch() {
			return nil, fmt.Errorf("replica %d applied %d epochs, primary at %d", i, p.rp.Applied(), want.Epoch())
		}
		got := p.dir.Current()
		if got.Len() != want.Len() {
			return nil, fmt.Errorf("replica %d holds %d entries, primary %d", i, got.Len(), want.Len())
		}
		diverged := 0
		want.Each(func(v graph.VertexID, shard int) bool {
			if sh, ok := got.Lookup(v); !ok || sh != shard {
				diverged++
			}
			return diverged == 0
		})
		if diverged > 0 {
			return nil, fmt.Errorf("replica %d view diverged from primary", i)
		}
	}
	return res, nil
}
