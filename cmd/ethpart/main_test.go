package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ethpart/internal/experiments"
	"ethpart/internal/opsim"
	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
	"ethpart/internal/trace"
	"ethpart/internal/workload"
)

// writeTestTrace generates a small trace CSV on disk.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	eras := []workload.Era{{
		Name:          "mini",
		Start:         time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
		End:           time.Date(2017, 1, 8, 0, 0, 0, 0, time.UTC),
		TxPerDayStart: 10_000, TxPerDayEnd: 10_000, Kind: workload.GrowthLinear,
		NewAccountFrac: 0.2, DeploysPerDay: 5,
		Mix: workload.TxMix{Transfer: 0.6, Token: 0.2, Wallet: 0.1, Crowdsale: 0.05, Game: 0.03, Airdrop: 0.02},
	}}
	gt, err := sim.Generate(workload.Config{Seed: 5, Scale: 0.05, Eras: eras, BlockInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := trace.NewCSVWriter(f)
	for _, rec := range gt.Records {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpsValidation(t *testing.T) {
	if err := runOps([]string{"-bogus"}); err == nil {
		t.Error("unknown flag must error")
	}
	if err := runOps([]string{"-k", "0"}); err == nil {
		t.Error("k=0 must error")
	}
}

func TestOpsRunsAllMethodsAndModels(t *testing.T) {
	// A tiny seeded workload through the full method × model matrix, both
	// output formats, on both chain engines (-parallel also cross-checks
	// parallel totals against serial inside runOps).
	for _, extra := range [][]string{nil, {"-csv"}, {"-parallel"}, {"-parallel", "-csv"}} {
		args := append([]string{"-seed", "3", "-scale", "0.0001", "-k", "2",
			"-repartition", "168h"}, extra...)
		if err := runOps(args); err != nil {
			t.Errorf("ops %v: %v", extra, err)
		}
	}
}

func TestOpsCSVGuardsEmptySettlement(t *testing.T) {
	// Regression: a window with zero settled receipts used to emit NaN
	// into the CSV; it must emit an empty cell instead.
	rows := []experiments.OperationalRow{{
		Method: sim.MethodHash,
		Model:  shardchain.ModelReceipts,
		K:      2,
		Result: &opsim.Result{
			Method: sim.MethodHash,
			Model:  shardchain.ModelReceipts,
			K:      2,
			Windows: []opsim.WindowStat{
				{Start: time.Unix(0, 0).UTC(), Interactions: 3}, // nothing settled
				{Start: time.Unix(14400, 0).UTC(), Interactions: 2,
					ReceiptsSettled: 2, SettlementBlocks: 3},
			},
		},
	}}
	var buf bytes.Buffer
	if err := opsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "NaN") {
		t.Errorf("CSV contains NaN:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 windows:\n%s", len(lines), out)
	}
	col := -1
	for i, h := range strings.Split(lines[0], ",") {
		if h == "mean_settlement_blocks" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("no mean_settlement_blocks column in header:\n%s", lines[0])
	}
	if fields := strings.Split(lines[1], ","); fields[col] != "" {
		t.Errorf("empty-settlement cell = %q, want empty", fields[col])
	}
	if fields := strings.Split(lines[2], ","); fields[col] != "1.500" {
		t.Errorf("settlement cell = %q, want 1.500", fields[col])
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -trace must error")
	}
	if err := run([]string{"-trace", "x.csv", "-method", "bogus"}); err == nil {
		t.Error("bad method must error")
	}
}

// TestHorizonFlagFailsFast pins the flag-parse-time validation: -horizon
// without -decay-half-life must be rejected by every subcommand before any
// trace is read or workload generated (the simulator would reject it too,
// but only after minutes of setup), with a message that names both flags.
func TestHorizonFlagFailsFast(t *testing.T) {
	cases := []struct {
		name string
		run  func() error
	}{
		// run would otherwise fail on the missing trace file — the decay
		// validation must come first.
		{"replay", func() error {
			return run([]string{"-trace", "does-not-exist.csv", "-horizon", "24h"})
		}},
		{"ops", func() error { return runOps([]string{"-horizon", "24h"}) }},
		{"bench-dir", func() error {
			return runBenchDir([]string{"-decay-half-life", "0", "-horizon", "24h"})
		}},
	}
	for _, tc := range cases {
		err := tc.run()
		if err == nil {
			t.Errorf("%s: -horizon without -decay-half-life accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "-decay-half-life") {
			t.Errorf("%s: error %q does not name the missing flag", tc.name, err)
		}
	}
	// The valid pairing still parses (and fails later only for unrelated
	// reasons, e.g. the missing trace file).
	err := run([]string{"-trace", "does-not-exist.csv",
		"-decay-half-life", "6h", "-horizon", "24h"})
	if err == nil || strings.Contains(err.Error(), "-decay-half-life") {
		t.Errorf("valid decay pair rejected at flag parse: %v", err)
	}
}

// TestBenchDir smoke-runs the serving-path load driver at a tiny scale:
// two reader counts, table and CSV, with the schedule capture, the commit
// replay and the latency sweep all exercised.
func TestBenchDir(t *testing.T) {
	for _, extra := range [][]string{nil, {"-csv"}} {
		args := append([]string{
			"-eras", "6", "-windows-per-era", "6",
			"-readers", "1,2", "-duration", "50ms",
		}, extra...)
		if err := runBenchDir(args); err != nil {
			t.Errorf("bench-dir %v: %v", extra, err)
		}
	}
	if err := runBenchDir([]string{"-readers", "0"}); err == nil {
		t.Error("bench-dir -readers 0 accepted")
	}
	if err := runBenchDir([]string{"-method", "bogus"}); err == nil {
		t.Error("bench-dir bad method accepted")
	}
}

// TestBenchDirNet smoke-runs the networked serving tier: a primary front
// end plus two replica processes over loopback TCP, readers issuing
// snapshot-pinned batch lookups while commits replicate through the epoch
// fan-out. runBenchDir errors on zero served lookups or any replica
// divergence, so a passing run is the serving-path smoke assertion.
func TestBenchDirNet(t *testing.T) {
	for _, extra := range [][]string{nil, {"-csv"}} {
		args := append([]string{
			"-net", "-replicas", "2",
			"-eras", "4", "-windows-per-era", "4",
			"-readers", "2", "-duration", "100ms",
		}, extra...)
		if err := runBenchDir(args); err != nil {
			t.Errorf("bench-dir -net %v: %v", extra, err)
		}
	}
	if err := runBenchDir([]string{"-net", "-replicas", "0"}); err == nil {
		t.Error("bench-dir -net -replicas 0 accepted")
	}
}

// TestChaosSmoke runs the full seeded scenario library at a tiny scale —
// every scenario must converge byte-identical to the fault-free oracle
// (runChaos returns an error on any invariant violation) — plus the CSV
// output path and flag validation.
func TestChaosSmoke(t *testing.T) {
	if err := runChaos([]string{"-eras", "3", "-windows-per-era", "3", "-seed", "1", "-k", "2"}); err != nil {
		t.Errorf("chaos: %v", err)
	}
	if err := runChaos([]string{"-eras", "3", "-windows-per-era", "3", "-scenario", "crash-wave", "-csv"}); err != nil {
		t.Errorf("chaos -csv: %v", err)
	}
	if err := runChaos([]string{"-scenario", "bogus"}); err == nil {
		t.Error("chaos unknown scenario accepted")
	}
	if err := runChaos([]string{"-method", "bogus"}); err == nil {
		t.Error("chaos bad method accepted")
	}
}

// TestChaosNetSmoke runs the networked chaos path on the two directory-
// fault schedules: commits replicate over loopback TCP to replicas that
// each apply through their own fault plane, and runChaos errors unless
// every replica view converges entry-by-entry to the in-process oracle
// with zero torn epochs.
func TestChaosNetSmoke(t *testing.T) {
	for _, scenario := range []string{"flip-stall", "mixed"} {
		err := runChaos([]string{
			"-net", "-replicas", "2",
			"-eras", "3", "-windows-per-era", "3", "-k", "2",
			"-scenario", scenario,
		})
		if err != nil {
			t.Errorf("chaos -net %s: %v", scenario, err)
		}
	}
}

func TestReplayEachMethod(t *testing.T) {
	path := writeTestTrace(t)
	for _, method := range []string{"hash", "kl", "metis", "r-metis", "tr-metis"} {
		err := run([]string{
			"-trace", path, "-method", method, "-k", "4",
			"-repartition", "48h",
		})
		if err != nil {
			t.Errorf("%s: %v", method, err)
		}
	}
}
