package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"ethpart/internal/sim"
	"ethpart/internal/trace"
	"ethpart/internal/workload"
)

// writeTestTrace generates a small trace CSV on disk.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	eras := []workload.Era{{
		Name:          "mini",
		Start:         time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
		End:           time.Date(2017, 1, 8, 0, 0, 0, 0, time.UTC),
		TxPerDayStart: 10_000, TxPerDayEnd: 10_000, Kind: workload.GrowthLinear,
		NewAccountFrac: 0.2, DeploysPerDay: 5,
		Mix: workload.TxMix{Transfer: 0.6, Token: 0.2, Wallet: 0.1, Crowdsale: 0.05, Game: 0.03, Airdrop: 0.02},
	}}
	gt, err := sim.Generate(workload.Config{Seed: 5, Scale: 0.05, Eras: eras, BlockInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := trace.NewCSVWriter(f)
	for _, rec := range gt.Records {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpsValidation(t *testing.T) {
	if err := runOps([]string{"-bogus"}); err == nil {
		t.Error("unknown flag must error")
	}
	if err := runOps([]string{"-k", "0"}); err == nil {
		t.Error("k=0 must error")
	}
}

func TestOpsRunsAllMethodsAndModels(t *testing.T) {
	// A tiny seeded workload through the full method × model matrix, both
	// output formats.
	for _, extra := range [][]string{nil, {"-csv"}} {
		args := append([]string{"-seed", "3", "-scale", "0.0001", "-k", "2",
			"-repartition", "168h"}, extra...)
		if err := runOps(args); err != nil {
			t.Errorf("ops %v: %v", extra, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -trace must error")
	}
	if err := run([]string{"-trace", "x.csv", "-method", "bogus"}); err == nil {
		t.Error("bad method must error")
	}
}

func TestReplayEachMethod(t *testing.T) {
	path := writeTestTrace(t)
	for _, method := range []string{"hash", "kl", "metis", "r-metis", "tr-metis"} {
		err := run([]string{
			"-trace", path, "-method", method, "-k", "4",
			"-repartition", "48h",
		})
		if err != nil {
			t.Errorf("%s: %v", method, err)
		}
	}
}
