package main

import (
	"fmt"
	"net"

	"ethpart/internal/directory"
	"ethpart/internal/dirserve"
	"ethpart/internal/fault"
	"ethpart/internal/graph"
)

// chaosNet is the networked side of a chaos scenario: N replica processes
// (goroutine-hosted servers over loopback TCP), each applying the primary's
// commit stream through its OWN fault.FlakyDirectory with a derived seed —
// replica-side stalled waves and transient commit failures reorder and
// retry commits locally — and a dirserve.Fanout splice for the primary.
// After the run, every replica must converge entry-by-entry to the
// in-process oracle view with zero torn epochs.
type chaosNet struct {
	reps []*chaosNetReplica
	fan  *dirserve.Fanout
}

type chaosNetReplica struct {
	dir   *directory.Directory
	inj   *fault.Injector
	flaky *fault.FlakyDirectory
	rp    *dirserve.Replica
	srv   *dirserve.Server
}

// startChaosNet stands up n replica processes for one scenario. Each
// replica's injector reuses the scenario's directory-fault knobs under a
// seed derived from the replica index, so no two replicas (nor the
// primary) stall or fail the same commits.
func startChaosNet(n int, sched fault.Schedule) (*chaosNet, error) {
	cn := &chaosNet{}
	for i := 0; i < n; i++ {
		inj, err := fault.New(fault.Schedule{
			Seed:             sched.Seed*1_000_003 + uint64(i) + 1,
			Shards:           sched.Shards,
			WaveStallFlushes: sched.WaveStallFlushes,
			CommitFailEvery:  sched.CommitFailEvery,
			CommitFailCount:  sched.CommitFailCount,
		})
		if err != nil {
			cn.close()
			return nil, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cn.close()
			return nil, err
		}
		r := &chaosNetReplica{dir: directory.New(directory.Config{}), inj: inj}
		r.flaky = fault.NewFlakyDirectory(r.dir, inj)
		r.rp = dirserve.NewReplica(r.flaky)
		r.srv = dirserve.Serve(l, dirserve.ServerConfig{Dir: r.dir, Replica: r.rp})
		cn.reps = append(cn.reps, r)
	}
	return cn, nil
}

// committer is the opsim.Config.DirCommitter splice: a fan-out from the
// run's primary directory to every replica process. It sits below the
// primary's fault plane, so replicas receive exactly the landed commit
// sequence with real epoch numbers.
func (cn *chaosNet) committer(d *directory.Directory) (directory.Committer, error) {
	addrs := make([]string, len(cn.reps))
	for i, r := range cn.reps {
		addrs[i] = r.srv.Addr()
	}
	fan, err := dirserve.NewFanout(d, nil, addrs...)
	if err != nil {
		return nil, err
	}
	cn.fan = fan
	return fan, nil
}

// chaosNetStats summarises the replica fleet after a scenario.
type chaosNetStats struct {
	applied    uint64 // contiguous apply watermark (identical across replicas)
	waveStalls uint64 // replica-side injected wave stalls, summed
	torn       uint64 // replica-side torn commits, summed (must be zero)
}

// finish drains the fan-out and every replica's stalled waves, then
// cross-checks each replica's final directory view entry-by-entry (both
// directions) against the in-process oracle snapshot. Violations are
// returned in the chaos run's invariant-violation format.
func (cn *chaosNet) finish(oracle *directory.Snapshot) (chaosNetStats, []string) {
	var st chaosNetStats
	var violations []string
	if cn.fan != nil {
		if err := cn.fan.Close(); err != nil {
			violations = append(violations, fmt.Sprintf("net: fan-out: %v", err))
		}
	}
	for i, r := range cn.reps {
		if err := r.flaky.DrainStalls(); err != nil {
			violations = append(violations, fmt.Sprintf("net: replica %d drain: %v", i, err))
			continue
		}
		m := r.inj.Metrics.Snapshot()
		st.waveStalls += m.WaveStalls
		st.torn += m.TornCommits
		if m.TornCommits > 0 {
			violations = append(violations, fmt.Sprintf("net: replica %d observed %d torn epochs", i, m.TornCommits))
		}
		if st.applied == 0 {
			st.applied = r.rp.Applied()
		} else if r.rp.Applied() != st.applied {
			violations = append(violations, fmt.Sprintf("net: replica %d applied %d epochs, replica 0 applied %d",
				i, r.rp.Applied(), st.applied))
		}
		if oracle == nil {
			violations = append(violations, "net: run produced no oracle directory view")
			continue
		}
		got := r.dir.Current()
		if got.Len() != oracle.Len() {
			violations = append(violations, fmt.Sprintf("net: replica %d holds %d entries, oracle %d",
				i, got.Len(), oracle.Len()))
		}
		// Entry-by-entry, both directions: same vertices, same shards. The
		// comparison is on the served mapping — replica-side stalls reorder
		// tier-only lanes (Retire/Promote) against each other, so tiers may
		// legitimately differ; answers may not.
		diverged := 0
		oracle.Each(func(v graph.VertexID, shard int) bool {
			if sh, ok := got.Lookup(v); !ok || sh != shard {
				violations = append(violations, fmt.Sprintf(
					"net: replica %d vertex %d = %d (ok=%v), oracle %d", i, v, sh, ok, shard))
				diverged++
			}
			return diverged < 5
		})
		got.Each(func(v graph.VertexID, shard int) bool {
			if _, ok := oracle.Lookup(v); !ok {
				violations = append(violations, fmt.Sprintf("net: replica %d holds extra vertex %d", i, v))
				diverged++
			}
			return diverged < 5
		})
	}
	if len(cn.reps) > 0 && st.applied == 0 {
		violations = append(violations, "net: replicas applied zero epochs")
	}
	cn.close()
	return st, violations
}

func (cn *chaosNet) close() {
	for _, r := range cn.reps {
		if r.srv != nil {
			r.srv.Close()
		}
	}
}
