// Command ethpart replays an interaction trace (produced by tracegen or
// converted from a real blockchain) under one of the paper's five
// partitioning methods and reports edge-cut, balance and move metrics.
//
// Usage:
//
//	ethpart -trace trace.csv[.gz] -method metis -k 4 [-window 4h] [-repartition 336h]
//	        [-decay-half-life 168h] [-horizon 672h]
//	ethpart -scenario flash-nft-mint [-arrival poisson] [-hours 48] [-seed 1] [-method metis]
//	ethpart ops [-seed 1] [-scale 0.002] [-scenario diurnal-exchange [-arrival flash]]
//	        [-k 2] [-csv] [-parallel] [-decay-half-life 168h] [-horizon 672h]
//	        [-autoscale [-k-min 1] [-k-max 8] [-target-load 1024]]
//	ethpart bench-dir [-readers 1,2,4] [-duration 1s] [-method tr-metis]
//	        [-eras 12] [-decay-half-life 12h] [-net [-replicas 2]] [-csv]
//	ethpart chaos [-scenario all] [-workload diurnal-exchange [-arrival flash]]
//	        [-seed 1] [-k 4] [-eras 6] [-windows-per-era 6]
//	        [-net [-replicas 2]] [-csv]
//
// -trace accepts gzip-compressed traces (sniffed by magic bytes, so both
// trace.csv.gz and renamed compressed files work). -scenario replays a
// named open-loop scenario from the workload library instead of a file;
// tracegen -list names them. In chaos the -scenario flag keeps its
// original meaning (the fault-scenario library), so the workload scenario
// is selected with -workload there.
//
// With -decay-half-life the replay runs in windowed-decay mode: the
// cumulative graph ages at every window boundary and entries idle past the
// retention horizon retire, so memory and repartition cost stay bounded by
// the active set on arbitrarily long traces (shard assignments stay sticky
// through retirement).
//
// The ops subcommand runs the operational co-simulation: every method is
// replayed through a live sharded chain under both multi-shard models and
// the edge-cut curves gain operational twins — cross-shard messages,
// settlement latency, migrated state and failed transactions. With
// -parallel the chain also runs on the parallel per-shard engine
// (byte-identical results) and the table reports its per-block speedup.
// Homes are resolved through the concurrent placement directory
// (internal/directory), the same serving path bench-dir loads. With
// -autoscale the shard count becomes a control variable: the saturation
// controller splits and merges shards at window boundaries between -k-min
// and -k-max, and the report gains shards-provisioned-over-time (shrd-win,
// and a per-window shards column in -csv) beside the resize count.
//
// The bench-dir subcommand is the serving-path load driver: it captures a
// drifting-era trace's placement/repartition/retirement schedule, then
// replays those commits against the epoch-versioned directory while G
// reader goroutines issue synthetic lookups, sweeping G and reporting
// lookups/sec, exact p50/p99 lookup latency (log-scale histogram, no
// sampling), and the epoch-flip stall. With -net the same schedule drives
// the networked serving tier (internal/dirserve) instead: commits
// replicate through an epoch fan-out to -replicas replica processes over
// loopback TCP, readers issue snapshot-pinned batch lookups through real
// sockets, and the report adds the replica apply lag; every row ends with
// a primary/replica convergence check.
//
// chaos -net replicates every scenario's directory commits to -replicas
// replica processes, each applying through its own fault plane (derived
// seed); their final views must converge entry-by-entry to the in-process
// oracle with zero torn epochs.
//
// -horizon without -decay-half-life is rejected at flag-parse time by
// every subcommand (the horizon is the decay subsystem's retention bound
// and would otherwise be silently ignored).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"ethpart/internal/report"
	"ethpart/internal/sim"
	"ethpart/internal/trace"
	"ethpart/internal/workload"
)

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "ops":
		err = runOps(args[1:])
	case len(args) > 0 && args[0] == "bench-dir":
		err = runBenchDir(args[1:])
	case len(args) > 0 && args[0] == "chaos":
		err = runChaos(args[1:])
	default:
		err = run(args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ethpart:", err)
		os.Exit(1)
	}
}

// validateDecayFlags rejects -horizon without -decay-half-life at flag
// parse time, shared by every subcommand that exposes the pair. Without
// this the rejection only surfaces when the simulator is constructed —
// after trace loading or workload generation has already burned minutes.
func validateDecayFlags(decay, horizon time.Duration) error {
	if horizon > 0 && decay <= 0 {
		return fmt.Errorf(
			"-horizon %v requires -decay-half-life: the horizon is the decay subsystem's retention bound and would be silently ignored without a half-life; pass both or neither", horizon)
	}
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("ethpart", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "trace CSV file ('-' for stdin, .gz read transparently)")
	scenario := fs.String("scenario", "", "replay a named library scenario instead of a trace file")
	arrival := fs.String("arrival", "", "override the scenario's arrival process: poisson|diurnal|flash")
	hours := fs.Float64("hours", 0, "override the scenario's arrival duration (hours)")
	seed := fs.Int64("seed", 1, "scenario seed (with -scenario)")
	methodFlag := fs.String("method", "metis", "method: hash|kl|metis|r-metis|tr-metis")
	k := fs.Int("k", 2, "number of shards")
	window := fs.Duration("window", 4*time.Hour, "metric window")
	repartition := fs.Duration("repartition", 14*24*time.Hour, "repartition period")
	cutThreshold := fs.Float64("cut-threshold", 0, "TR-METIS dynamic edge-cut trigger (0 = default)")
	balThreshold := fs.Float64("balance-threshold", 0, "TR-METIS dynamic balance trigger (0 = default)")
	decay := fs.Duration("decay-half-life", 0, "enable windowed graph decay with this half-life (0 = full history)")
	horizon := fs.Duration("horizon", 0, "decay retention horizon (0 = 4x the half-life)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateDecayFlags(*decay, *horizon); err != nil {
		return err
	}
	if (*tracePath == "") == (*scenario == "") {
		return fmt.Errorf("exactly one of -trace or -scenario is required")
	}
	if *scenario == "" && (*arrival != "" || *hours != 0) {
		return fmt.Errorf("-arrival/-hours require -scenario")
	}
	method, err := sim.ParseMethod(*methodFlag)
	if err != nil {
		return err
	}

	s, err := sim.New(sim.Config{
		Method:           method,
		K:                *k,
		Window:           *window,
		RepartitionEvery: *repartition,
		CutThreshold:     *cutThreshold,
		BalanceThreshold: *balThreshold,
		DecayHalfLife:    *decay,
		Horizon:          *horizon,
	})
	if err != nil {
		return err
	}

	start := time.Now()
	var (
		n       int64
		skipped int64
	)
	if *scenario != "" {
		sc, err := workload.ResolveScenario(*scenario, *arrival, *hours, *seed)
		if err != nil {
			return err
		}
		gen, err := workload.NewScenario(sc)
		if err != nil {
			return err
		}
		// Stream block by block straight into the simulator: the full
		// record slice is never materialised.
		stream := gen.Stream()
		for {
			rec, err := stream.Read()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return err
			}
			if err := s.Process(rec); err != nil {
				return err
			}
			n++
		}
	} else {
		in, err := trace.OpenFile(*tracePath)
		if err != nil {
			return err
		}
		defer in.Close()

		reader := trace.NewCSVReader(in)
		for {
			rec, err := reader.Read()
			if errors.Is(err, io.EOF) {
				break
			}
			// A malformed record is confined to its line: report it and keep
			// the tail of the dataset instead of aborting the replay.
			var re *trace.RecordError
			if errors.As(err, &re) {
				fmt.Fprintln(os.Stderr, "ethpart: skipping", re)
				continue
			}
			if err != nil {
				return err
			}
			if err := s.Process(rec); err != nil {
				return err
			}
			n++
		}
		skipped = reader.Skipped()
	}
	res := s.Finish()

	fmt.Printf("replayed %s interactions in %v", report.FormatCount(n), time.Since(start).Round(time.Millisecond))
	if skipped > 0 {
		fmt.Printf(" (%s malformed records skipped)", report.FormatCount(skipped))
	}
	fmt.Printf("\n\n")
	rows := [][]string{
		{"method", res.Method.String()},
		{"shards", strconv.Itoa(res.K)},
		{"vertices", report.FormatCount(int64(res.Vertices))},
		{"edges", report.FormatCount(int64(res.Edges))},
		{"dynamic edge-cut", report.FormatFloat(res.OverallDynamicCut)},
		{"dynamic balance", report.FormatFloat(res.OverallDynamicBalance)},
		{"static edge-cut", report.FormatFloat(res.FinalStaticCut)},
		{"static balance", report.FormatFloat(res.FinalStaticBalance)},
		{"repartitions", strconv.Itoa(res.Repartitions)},
		{"moves", report.FormatCount(res.TotalMoves)},
		{"moved storage slots", report.FormatCount(res.TotalMovedSlots)},
		{"windows", strconv.Itoa(len(res.Windows))},
	}
	return report.Table(os.Stdout, []string{"metric", "value"}, rows)
}
