package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ethpart/internal/directory"
	"ethpart/internal/experiments"
	"ethpart/internal/graph"
	"ethpart/internal/report"
	"ethpart/internal/sim"
	"ethpart/internal/stats"
)

// runBenchDir executes the bench-dir subcommand: the serving-path load
// driver for the placement directory. It replays a drifting-era trace once
// through the simulator to capture its placement/repartition/retirement
// schedule, then — for each configured reader count — replays that
// schedule's commits against a fresh directory while G goroutines issue
// synthetic lookups as fast as they can, reporting lookups/sec, exact
// lookup p50/p99, and the epoch-flip stall (the writer-side cost of
// publishing a wave; readers never block on it).
//
// With -net the same schedule drives the networked serving tier instead:
// the writer commits through a dirserve.Fanout replicating to -replicas
// goroutine-hosted replica processes over loopback TCP, and readers issue
// batch lookups through dirserve clients against the whole fleet.
func runBenchDir(args []string) error {
	fs := flag.NewFlagSet("ethpart bench-dir", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "drifting-era trace seed")
	k := fs.Int("k", 4, "number of shards")
	methodFlag := fs.String("method", "tr-metis", "repartitioning method driving the schedule")
	eras := fs.Int("eras", 12, "drifting eras in the captured trace")
	windows := fs.Int("windows-per-era", 8, "4-hour windows per era")
	readersFlag := fs.String("readers", "1,2,4", "comma-separated reader counts to sweep")
	duration := fs.Duration("duration", time.Second, "lookup phase length per reader count")
	decay := fs.Duration("decay-half-life", 12*time.Hour, "windowed decay half-life for the schedule (0 = full history: no retirement traffic)")
	horizon := fs.Duration("horizon", 0, "decay retention horizon (0 = default multiple of the half-life)")
	netMode := fs.Bool("net", false, "serve over real loopback TCP sockets (the dirserve tier)")
	replicasFlag := fs.String("replicas", "2", "comma-separated replica counts to sweep (with -net)")
	csvOut := fs.Bool("csv", false, "emit CSV instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateDecayFlags(*decay, *horizon); err != nil {
		return err
	}
	method, err := sim.ParseMethod(*methodFlag)
	if err != nil {
		return err
	}
	readers, err := parseReaders(*readersFlag)
	if err != nil {
		return err
	}

	gt := experiments.DecayTrace(experiments.DecayParams{
		Seed: *seed, K: *k, Eras: *eras, WindowsPerEra: *windows,
	})
	sched, err := captureSchedule(gt, sim.Config{
		Method: method, K: *k,
		Window:            4 * time.Hour,
		RepartitionEvery:  2 * 24 * time.Hour,
		MinRepartitionGap: 24 * time.Hour,
		TriggerWindows:    2,
		CutThreshold:      0.2,
		BalanceThreshold:  1.5,
		DecayHalfLife:     *decay,
		Horizon:           *horizon,
	})
	if err != nil {
		return err
	}
	maxID := graph.VertexID(gt.Registry.Len())
	fmt.Printf("schedule: %d commits (%d waves, %d placements, %d retirements) over %s records\n\n",
		len(sched.events), sched.waves, sched.placements, sched.retirements,
		report.FormatCount(int64(len(gt.Records))))

	if *netMode {
		replicaCounts, err := parseReaders(*replicasFlag)
		if err != nil {
			return fmt.Errorf("bench-dir: bad -replicas: %w", err)
		}
		return benchDirNet(sched, maxID, replicaCounts, readers, *duration, *csvOut)
	}

	headers := []string{
		"readers", "lookups", "lookups/s", "p50(ns)", "p99(ns)",
		"commits", "flip-mean(us)", "flip-max(us)", "entries", "cold",
	}
	var rows [][]string
	for _, g := range readers {
		res := driveDirectory(sched, maxID, g, *duration)
		rows = append(rows, []string{
			strconv.Itoa(g),
			report.FormatCount(res.lookups),
			report.FormatCount(int64(float64(res.lookups) / res.elapsed.Seconds())),
			strconv.FormatInt(res.p50, 10),
			strconv.FormatInt(res.p99, 10),
			report.FormatCount(res.commits),
			fmt.Sprintf("%.1f", res.flipMean.Seconds()*1e6),
			fmt.Sprintf("%.1f", res.flipMax.Seconds()*1e6),
			report.FormatCount(int64(res.stats.Entries)),
			report.FormatCount(int64(res.stats.Cold)),
		})
	}
	if *csvOut {
		return report.CSV(os.Stdout, headers, rows)
	}
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		return err
	}
	fmt.Printf("\n  p50/p99 are per-lookup averages over %d-lookup pinned-snapshot\n", lookupBurst)
	fmt.Println("  bursts, every burst recorded in an exact log-scale histogram")
	fmt.Println("  (<=6.25% bucket error, no sampling); the epoch-flip stall is the")
	fmt.Println("  writer-side commit cost -- readers stay lock-free throughout.")
	return nil
}

// parseReaders parses the -readers list.
func parseReaders(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bench-dir: bad -readers entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench-dir: -readers is empty")
	}
	return out, nil
}

// dirEvent is one captured commit: a batch the publisher would have
// committed as one epoch flip, tagged with whether it was a wave.
type dirEvent struct {
	batch directory.Batch
	wave  bool
}

// schedule is the captured write workload of a replay.
type schedule struct {
	events                         []dirEvent
	waves, placements, retirements int
}

// captureSchedule replays cfg over gt once, recording the directory
// commits the publisher would perform: placements batched per record,
// waves (with any pending retirements) as single batches.
func captureSchedule(gt *sim.GeneratedTrace, cfg sim.Config) (*schedule, error) {
	sched := &schedule{}
	var places []directory.Move
	var moves []directory.Move
	var retires []graph.VertexID
	flushPlaces := func() {
		if len(places) == 0 && len(retires) == 0 {
			return
		}
		sched.events = append(sched.events, dirEvent{batch: directory.Batch{
			Set:    append([]directory.Move(nil), places...),
			Retire: append([]graph.VertexID(nil), retires...),
		}})
		sched.placements += len(places)
		sched.retirements += len(retires)
		places, retires = places[:0], retires[:0]
	}
	cfg.OnPlace = func(v graph.VertexID, shard int) {
		places = append(places, directory.Move{V: v, To: shard})
	}
	cfg.OnMove = func(v graph.VertexID, _, to int) {
		moves = append(moves, directory.Move{V: v, To: to})
	}
	cfg.OnRetire = func(v graph.VertexID, _ int) {
		retires = append(retires, v)
	}
	cfg.OnRepartition = func(_ time.Time, _ int) {
		// Mirror Publisher.OnRepartition exactly: buffered placements, the
		// wave and pending retirements all land in ONE epoch flip, so the
		// replayed commit shapes match what the live bridge performs.
		b := directory.Batch{Retire: append([]graph.VertexID(nil), retires...)}
		b.Set = append(append([]directory.Move(nil), places...), moves...)
		sched.events = append(sched.events, dirEvent{batch: b, wave: true})
		sched.placements += len(places)
		sched.retirements += len(retires)
		sched.waves++
		places, retires, moves = places[:0], retires[:0], moves[:0]
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	for _, rec := range gt.Records {
		if err := s.Process(rec); err != nil {
			return nil, err
		}
		// Batch placements at record granularity, like the live bridge.
		flushPlaces()
	}
	flushPlaces()
	s.Finish()
	if sched.waves == 0 {
		return nil, fmt.Errorf("bench-dir: the captured schedule has no repartition waves; lower the thresholds or lengthen the trace")
	}
	return sched, nil
}

// lookupBurst is how many consecutive lookups a reader serves from one
// pinned snapshot, and the averaging window of the latency samples.
const lookupBurst = 256

// driveResult is one reader-count measurement.
type driveResult struct {
	lookups  int64
	elapsed  time.Duration
	p50, p99 int64
	commits  int64
	flipMean time.Duration
	flipMax  time.Duration
	stats    directory.Stats
}

// driveDirectory replays the schedule against a fresh directory while g
// readers hammer lookups for at least d.
func driveDirectory(sched *schedule, maxID graph.VertexID, g int, d time.Duration) driveResult {
	dir := directory.New(directory.Config{})
	var stop atomic.Bool

	// Writer: replay the whole schedule, then keep cycling it until time
	// is up, measuring per-commit cost (the epoch-flip stall).
	var commits int64
	var flipTotal, flipMax time.Duration
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for pass := 0; ; pass++ {
			for _, ev := range sched.events {
				if pass > 0 && !ev.wave {
					continue // later passes replay only the wave traffic
				}
				start := time.Now()
				if _, err := dir.Commit(ev.batch); err != nil {
					panic(err) // malformed schedules are a programming error
				}
				el := time.Since(start)
				commits++
				flipTotal += el
				if el > flipMax {
					flipMax = el
				}
				if stop.Load() {
					return
				}
			}
			if stop.Load() {
				return
			}
		}
	}()

	// Readers: lock-free lookups against pinned snapshots, every burst's
	// per-lookup average recorded into an exact log-scale histogram.
	var wg sync.WaitGroup
	counts := make([]int64, g)
	hists := make([]*stats.LatencyHist, g)
	start := time.Now()
	for r := 0; r < g; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			hist := new(stats.LatencyHist)
			hists[r] = hist
			state := uint64(r)*0x9e3779b97f4a7c15 + 1
			next := func() uint64 {
				state = state*6364136223846793005 + 1442695040888963407
				return state >> 33
			}
			var n int64
			var sink int
			for !stop.Load() {
				snap := dir.Current()
				// A pinned snapshot serves a burst of consistent lookups,
				// like one request batch in a front end. The burst is timed
				// as a whole and the per-lookup average recorded — wrapping
				// a single ~30 ns lookup in two clock reads would measure
				// the clock, not the lookup.
				t0 := time.Now()
				for i := 0; i < lookupBurst; i++ {
					s, _ := snap.Lookup(graph.VertexID(next() % uint64(maxID)))
					sink += s
				}
				avg := time.Since(t0).Nanoseconds() / lookupBurst
				hist.Record(avg)
				n += lookupBurst
			}
			counts[r] = n
			_ = sink
		}(r)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	<-writerDone
	elapsed := time.Since(start)

	var total int64
	merged := new(stats.LatencyHist)
	for r := 0; r < g; r++ {
		total += counts[r]
		merged.Merge(hists[r])
	}
	res := driveResult{
		lookups: total,
		elapsed: elapsed,
		p50:     merged.Quantile(0.50),
		p99:     merged.Quantile(0.99),
		commits: commits,
		flipMax: flipMax,
		stats:   dir.Stats(),
	}
	if commits > 0 {
		res.flipMean = flipTotal / time.Duration(commits)
	}
	return res
}
