module ethpart

go 1.24
