// Package ethpart's root benchmark harness regenerates every table and
// figure of the paper at benchmark scale and reports the headline metrics
// alongside wall-clock cost:
//
//	go test -bench=. -benchmem
//
// One benchmark exists per figure (Fig. 1, 3a, 3b, 4, 5) plus one per
// ablation called out in DESIGN.md §5 (matching scheme, FM refinement,
// placement rule, R-METIS window length, TR-METIS thresholds). Benchmarks
// share one synthetic history, generated once, so the comparisons run on
// identical input — the same discipline the experiments binary uses.
package ethpart

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ethpart/internal/chain"
	"ethpart/internal/directory"
	"ethpart/internal/evm"
	"ethpart/internal/experiments"
	"ethpart/internal/graph"
	"ethpart/internal/opsim"
	"ethpart/internal/partition"
	"ethpart/internal/partition/multilevel"
	"ethpart/internal/shardchain"
	"ethpart/internal/sim"
	"ethpart/internal/trace"
	"ethpart/internal/types"
	"ethpart/internal/workload"
)

// benchParams is the shared benchmark-scale configuration: the full
// Aug-2015→Jan-2018 era schedule at a scale that keeps one simulation run
// in seconds.
var benchParams = experiments.Params{
	Seed:          1,
	Scale:         0.002,
	BlockInterval: 2 * time.Hour,
}

var (
	benchOnce sync.Once
	benchDS   *experiments.Dataset
	benchErr  error
)

// dataset lazily generates the shared history.
func dataset(b *testing.B) *experiments.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		benchDS, benchErr = experiments.NewDataset(benchParams)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS
}

// fullGraph builds the final cumulative graph of the shared history.
func fullGraph(b *testing.B, ds *experiments.Dataset) *graph.CSR {
	b.Helper()
	g := graph.New()
	for _, rec := range ds.GT.Records {
		if err := rec.Apply(g); err != nil {
			b.Fatal(err)
		}
	}
	return graph.NewCSR(g)
}

// replayFresh runs one full simulation outside the dataset cache so that
// b.N iterations measure real work.
func replayFresh(b *testing.B, ds *experiments.Dataset, cfg sim.Config) *sim.Result {
	b.Helper()
	res, err := sim.Replay(ds.GT, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig1GraphEvolution regenerates Fig. 1: the monthly growth curve
// of the blockchain graph, with the era markers and the growth-rate fits.
func BenchmarkFig1GraphEvolution(b *testing.B) {
	ds := dataset(b)
	b.ResetTimer()
	var rows []experiments.Fig1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = ds.Fig1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.Vertices), "final-vertices")
	b.ReportMetric(float64(last.Edges), "final-edges")
	split := time.Date(2016, 11, 1, 0, 0, 0, 0, time.UTC)
	if pre, post, err := experiments.Fig1GrowthFit(rows, split); err == nil {
		b.ReportMetric(pre, "pre-attack-rate")
		b.ReportMetric(post, "post-attack-rate")
	}
}

// BenchmarkFig3Hashing regenerates Fig. 3a: hashing at k=2 over 4-hour
// windows. The paper's shape: static cut ≈ 0.5, optimum static balance,
// zero moves.
func BenchmarkFig3Hashing(b *testing.B) {
	ds := dataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		res = replayFresh(b, ds, sim.Config{Method: sim.MethodHash, K: 2})
	}
	b.StopTimer()
	b.ReportMetric(res.OverallDynamicCut, "dyn-cut")
	b.ReportMetric(res.FinalStaticBalance, "static-balance")
	b.ReportMetric(float64(res.TotalMoves), "moves")
}

// BenchmarkFig3Metis regenerates Fig. 3b: the multilevel (METIS) method at
// k=2 with two-week repartitioning. The paper's shape: much lower edge-cut
// than hashing at the cost of dynamic imbalance.
func BenchmarkFig3Metis(b *testing.B) {
	ds := dataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		res = replayFresh(b, ds, sim.Config{Method: sim.MethodMetis, K: 2})
	}
	b.StopTimer()
	b.ReportMetric(res.OverallDynamicCut, "dyn-cut")
	b.ReportMetric(res.OverallDynamicBalance, "dyn-balance")
	b.ReportMetric(float64(res.TotalMoves), "moves")
	b.ReportMetric(float64(res.Repartitions), "repartitions")
}

// sweepConfigs builds the method × k configuration grid of a figure sweep.
func sweepConfigs(ks []int) []sim.Config {
	var cfgs []sim.Config
	for _, k := range ks {
		for _, m := range sim.Methods() {
			cfgs = append(cfgs, sim.Config{Method: m, K: k})
		}
	}
	return cfgs
}

// BenchmarkFig4MethodComparison regenerates Fig. 4: all five methods at
// k ∈ {2, 8}, summarised over the 2017 sub-periods. The independent replays
// run as one parallel sweep, so ns/op shrinks with available cores.
func BenchmarkFig4MethodComparison(b *testing.B) {
	ds := dataset(b)
	cfgs := sweepConfigs([]int{2, 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunSweep(ds.GT, cfgs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5ShardSweep regenerates Fig. 5: the k ∈ {2,4,8} sweep as one
// parallel replay sweep. The paper's shape: dynamic edge-cut worsens with k
// for every method; METIS-family beats hashing and KL on cut; hashing and
// KL win on balance.
func BenchmarkFig5ShardSweep(b *testing.B) {
	ds := dataset(b)
	cfgs := sweepConfigs([]int{2, 4, 8})
	b.ReportAllocs()
	b.ResetTimer()
	var results []*sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		results, err = sim.RunSweep(ds.GT, cfgs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	byKey := func(m sim.Method, k int) *sim.Result {
		for i, cfg := range cfgs {
			if cfg.Method == m && cfg.K == k {
				return results[i]
			}
		}
		b.Fatalf("missing sweep result for %v k=%d", m, k)
		return nil
	}
	b.ReportMetric(byKey(sim.MethodHash, 2).OverallDynamicCut, "hash-k2-cut")
	b.ReportMetric(byKey(sim.MethodHash, 8).OverallDynamicCut, "hash-k8-cut")
	b.ReportMetric(byKey(sim.MethodMetis, 8).OverallDynamicCut, "metis-k8-cut")
}

// BenchmarkAblationMatching compares heavy-edge matching against random
// matching in the coarsening phase (DESIGN.md §5).
func BenchmarkAblationMatching(b *testing.B) {
	ds := dataset(b)
	csr := fullGraph(b, ds)
	for _, mode := range []struct {
		name   string
		random bool
	}{{"heavy-edge", false}, {"random", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			p := multilevel.New(multilevel.Config{Seed: 3, RandomMatching: mode.random})
			var parts []int
			for i := 0; i < b.N; i++ {
				var err error
				parts, err = p.Partition(csr, 8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cutOf(csr, parts), "dyn-cut")
		})
	}
}

// BenchmarkAblationRefinement compares the full pipeline against one with
// FM refinement disabled (DESIGN.md §5).
func BenchmarkAblationRefinement(b *testing.B) {
	ds := dataset(b)
	csr := fullGraph(b, ds)
	for _, mode := range []struct {
		name string
		skip bool
	}{{"with-fm", false}, {"no-fm", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			p := multilevel.New(multilevel.Config{Seed: 3, SkipRefinement: mode.skip})
			var parts []int
			for i := 0; i < b.N; i++ {
				var err error
				parts, err = p.Partition(csr, 8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cutOf(csr, parts), "dyn-cut")
		})
	}
}

// BenchmarkAblationPlacement compares the paper's min-cut/tie-balance
// placement of new vertices against hash placement under R-METIS
// (DESIGN.md §5).
func BenchmarkAblationPlacement(b *testing.B) {
	ds := dataset(b)
	for _, mode := range []struct {
		name string
		hash bool
	}{{"min-cut-rule", false}, {"hash-placement", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				res = replayFresh(b, ds, sim.Config{
					Method: sim.MethodRMetis, K: 4, HashPlacement: mode.hash,
				})
			}
			b.ReportMetric(res.OverallDynamicCut, "dyn-cut")
			b.ReportMetric(res.OverallDynamicBalance, "dyn-balance")
		})
	}
}

// BenchmarkAblationWindow sweeps the R-METIS repartitioning window
// (DESIGN.md §5). Shorter windows track the workload more closely but move
// more state.
func BenchmarkAblationWindow(b *testing.B) {
	ds := dataset(b)
	for _, span := range []struct {
		name string
		d    time.Duration
	}{
		{"1-week", 7 * 24 * time.Hour},
		{"2-weeks", 14 * 24 * time.Hour},
		{"4-weeks", 28 * 24 * time.Hour},
	} {
		b.Run(span.name, func(b *testing.B) {
			b.ReportAllocs()
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				res = replayFresh(b, ds, sim.Config{
					Method: sim.MethodRMetis, K: 4, RepartitionEvery: span.d,
				})
			}
			b.ReportMetric(res.OverallDynamicCut, "dyn-cut")
			b.ReportMetric(float64(res.TotalMoves), "moves")
			b.ReportMetric(float64(res.Repartitions), "repartitions")
		})
	}
}

// BenchmarkAblationThresholds sweeps TR-METIS trigger thresholds
// (DESIGN.md §5): tighter thresholds fire more repartitions and move more
// vertices for a better cut.
func BenchmarkAblationThresholds(b *testing.B) {
	ds := dataset(b)
	for _, th := range []struct {
		name string
		cut  float64
	}{
		{"cut-0.40", 0.40},
		{"cut-0.55", 0.55},
		{"cut-0.70", 0.70},
	} {
		b.Run(th.name, func(b *testing.B) {
			b.ReportAllocs()
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				res = replayFresh(b, ds, sim.Config{
					Method: sim.MethodTRMetis, K: 4,
					CutThreshold: th.cut, BalanceThreshold: 2.5,
				})
			}
			b.ReportMetric(res.OverallDynamicCut, "dyn-cut")
			b.ReportMetric(float64(res.TotalMoves), "moves")
			b.ReportMetric(float64(res.Repartitions), "repartitions")
		})
	}
}

// BenchmarkStreamingBaselines compares the one-pass streaming partitioners
// (LDG, Fennel) against hashing and the multilevel partitioner on the final
// graph — the quality/latency spectrum from stateless to offline.
func BenchmarkStreamingBaselines(b *testing.B) {
	ds := dataset(b)
	csr := fullGraph(b, ds)
	for _, cand := range []struct {
		name string
		p    partition.Partitioner
	}{
		{"hash", partition.Hash{}},
		{"ldg", partition.LDG{}},
		{"fennel", partition.Fennel{}},
		{"multilevel", multilevel.New(multilevel.Config{Seed: 3})},
	} {
		b.Run(cand.name, func(b *testing.B) {
			b.ReportAllocs()
			var parts []int
			for i := 0; i < b.N; i++ {
				var err error
				parts, err = cand.p.Partition(csr, 8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cutOf(csr, parts), "dyn-cut")
		})
	}
}

// BenchmarkProcessRecord isolates Simulator.Process, the per-interaction
// hot path of every replay: graph insertion, placement of new vertices and
// the window/cut accounting. ns/op and allocs/op here are the per-record
// cost every figure pays once per interaction.
func BenchmarkProcessRecord(b *testing.B) {
	ds := dataset(b)
	recs := ds.GT.Records
	newSim := func() *sim.Simulator {
		s, err := sim.New(sim.Config{Method: sim.MethodRMetis, K: 4})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	s := newSim()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(recs)
		if j == 0 && i > 0 {
			// Restart the replay so records keep arriving in time order.
			s = newSim()
		}
		if err := s.Process(recs[j]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardStep measures ShardChain.Step throughput — the per-block
// hot path of the operational layer — serial vs parallel under both
// multi-shard models. Each block carries one token-contract call per user
// (real EVM work per shard), 10% of them cross-shard, so the parallel
// engine's per-shard fan-out scales with GOMAXPROCS on multi-core runners
// while migration-model barriers and receipts settlement keep the
// comparison honest. The engines are byte-identical by contract (pinned by
// shardchain's property tests); this benchmark tracks what that buys.
func BenchmarkShardStep(b *testing.B) {
	const (
		k             = 4
		usersPerShard = 32
	)
	for _, model := range []shardchain.Model{shardchain.ModelReceipts, shardchain.ModelMigration} {
		for _, engine := range []struct {
			name     string
			parallel bool
		}{{"serial", false}, {"parallel", true}} {
			b.Run(fmt.Sprintf("model=%v/engine=%s", model, engine.name), func(b *testing.B) {
				users := make([]types.Address, 0, k*usersPerShard)
				assign := map[types.Address]int{}
				alloc := map[types.Address]evm.Word{}
				for s := 0; s < k; s++ {
					for u := 0; u < usersPerShard; u++ {
						a := types.AddressFromSeq(uint64(1 + s*usersPerShard + u))
						users = append(users, a)
						assign[a] = s
						alloc[a] = evm.WordFromUint64(1 << 40)
					}
				}
				// One token contract per shard, deployed by a dedicated
				// account homed there; the derived contract addresses join
				// the assignment so code and home coincide.
				deployers := make([]types.Address, k)
				tokens := make([]types.Address, k)
				for s := 0; s < k; s++ {
					deployers[s] = types.AddressFromSeq(uint64(10_000 + s))
					assign[deployers[s]] = s
					alloc[deployers[s]] = evm.WordFromUint64(1 << 40)
					tokens[s] = types.ContractAddress(deployers[s], 0)
					assign[tokens[s]] = s
				}
				sc, err := shardchain.New(shardchain.Config{
					K: k, Model: model, Chain: chain.DefaultConfig(), Parallel: engine.parallel,
				}, alloc, func(a types.Address) (int, bool) {
					s, ok := assign[a]
					return s, ok
				})
				if err != nil {
					b.Fatal(err)
				}
				var deploys []*chain.Transaction
				for s := 0; s < k; s++ {
					deploys = append(deploys, &chain.Transaction{
						Nonce: 0, From: deployers[s],
						Data:     evm.DeployWrapper(workload.TokenRuntime()),
						GasLimit: 5_000_000, GasPrice: 0,
					})
				}
				for _, r := range sc.Step(deploys) {
					if !r.Success {
						b.Fatalf("token deploy failed: %v", r.Err)
					}
				}

				nonces := map[types.Address]uint64{}
				word := func(a types.Address) [32]byte { return evm.WordFromBytes(a[:]).Bytes32() }
				block := func(i int) []*chain.Transaction {
					txs := make([]*chain.Transaction, 0, len(users))
					for j, u := range users {
						// Call the token on the user's current shard, or —
						// for every 10th (user, block) pair — on the next
						// shard over: a cross-shard receipt or a sender
						// migration, depending on the model.
						home := sc.HomeOf(u)
						if (i+j)%10 == 0 {
							home = (home + 1) % k
						}
						recipient := word(users[(j+i+1)%len(users)])
						amount := evm.WordFromUint64(1).Bytes32()
						to := tokens[home]
						txs = append(txs, &chain.Transaction{
							Nonce: nonces[u], From: u, To: &to,
							Data:     append(recipient[:], amount[:]...),
							GasLimit: 300_000, GasPrice: 0,
						})
						nonces[u]++
					}
					return txs
				}

				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, r := range sc.Step(block(i)) {
						if r.Err != nil {
							b.Fatalf("tx failed: %v", r.Err)
						}
					}
				}
				b.StopTimer()
				if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
					b.ReportMetric(float64(b.N*len(users))/elapsed, "tx/s")
				}
			})
		}
	}
}

// decayBenchTrace builds a long drifting-eras record stream: each era
// retires the previous era's active set, the regime where full-history
// mode accumulates graph (and repartition cost) linearly with trace length
// while windowed decay keeps both bounded by the active set.
func decayBenchTrace(eras int) []trace.Record {
	base := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	state := uint64(99991)
	next := func(n uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % n
	}
	const windowsPerEra, perWindow = 8, 150
	recs := make([]trace.Record, 0, eras*windowsPerEra*perWindow)
	t := base
	for e := 0; e < eras; e++ {
		lo := uint64(e * 300)
		for w := 0; w < windowsPerEra; w++ {
			for i := 0; i < perWindow; i++ {
				recs = append(recs, trace.Record{
					Time: t, From: lo + next(300), To: lo + next(300),
				})
				t += 4 * 3600 / perWindow
			}
		}
	}
	return recs
}

// BenchmarkDecayRepartition is the windowed-decay headline: METIS with
// two-day repartitioning over drifting-eras traces of growing length,
// full-history versus decay mode. The ms/fire metric is the replay
// wall-clock per repartition firing; over a 3× longer trace it grows with
// trace length in full-history mode (each firing partitions all of
// history) and stays flat in decay mode (each firing partitions only the
// horizon's worth of live graph). live-vertices reports the final live
// graph size — the memory bound made visible. Part of CI's benchmark
// smoke.
func BenchmarkDecayRepartition(b *testing.B) {
	for _, mode := range []struct {
		name  string
		decay bool
	}{{"full-history", false}, {"decay", true}} {
		for _, length := range []struct {
			name string
			eras int
		}{{"trace-1x", 12}, {"trace-3x", 36}} {
			b.Run(fmt.Sprintf("mode=%s/%s", mode.name, length.name), func(b *testing.B) {
				recs := decayBenchTrace(length.eras)
				cfg := sim.Config{
					Method: sim.MethodMetis, K: 4,
					Window:           4 * time.Hour,
					RepartitionEvery: 2 * 24 * time.Hour,
				}
				if mode.decay {
					cfg.DecayHalfLife = 24 * time.Hour
					cfg.Horizon = 4 * 24 * time.Hour
				}
				b.ReportAllocs()
				b.ResetTimer()
				var res *sim.Result
				for i := 0; i < b.N; i++ {
					s, err := sim.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					for _, r := range recs {
						if err := s.Process(r); err != nil {
							b.Fatal(err)
						}
					}
					res = s.Finish()
				}
				b.StopTimer()
				if res.Repartitions > 0 {
					perFire := b.Elapsed().Seconds() * 1e3 / float64(b.N) / float64(res.Repartitions)
					b.ReportMetric(perFire, "ms/fire")
				}
				b.ReportMetric(float64(res.Repartitions), "repartitions")
				b.ReportMetric(float64(res.Vertices), "live-vertices")
			})
		}
	}
}

// BenchmarkAutoscaleResize measures the elastic-shard-count machinery end
// to end: the flash-crowd trace replayed through the live chain and
// directory with the saturation controller armed, so each iteration pays
// for the split's re-partition wave and the merge's drain and lane
// decommission on top of the steady-state replay. It runs in the CI bench
// smoke so resize cost is tracked alongside repartition cost.
func BenchmarkAutoscaleResize(b *testing.B) {
	gt := experiments.FlashCrowdTrace(experiments.ScaleParams{})
	cfg := opsim.Config{
		Sim: sim.Config{
			Method: sim.MethodTRMetis, K: 2,
			Window:            4 * time.Hour,
			RepartitionEvery:  2 * 24 * time.Hour,
			MinRepartitionGap: 8 * time.Hour,
			TriggerWindows:    2,
			DecayHalfLife:     12 * time.Hour,
			Horizon:           36 * time.Hour,
			Autoscale: sim.AutoscaleConfig{
				Enabled: true, KMin: 2, KMax: 8, TargetWindowLoad: 100,
			},
		},
		Model: shardchain.ModelReceipts,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var res *opsim.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = opsim.Run(gt, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	resizes := len(res.Sim.Resizes)
	if resizes == 0 {
		b.Fatal("autoscaler never fired on the flash-crowd trace")
	}
	b.ReportMetric(float64(resizes), "resizes")
	b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N)/float64(resizes), "ms/resize")
	var shardWindows int64
	for _, w := range res.Windows {
		shardWindows += int64(w.Shards)
	}
	b.ReportMetric(float64(shardWindows), "shard-windows")
}

// benchDirectory builds a directory holding n hot entries (plus a retired
// cold slice) for the serving-path benchmarks.
func benchDirectory(b *testing.B, n int) *directory.Directory {
	b.Helper()
	d := directory.New(directory.Config{})
	set := make([]directory.Move, n)
	for i := range set {
		set[i] = directory.Move{V: graph.VertexID(i), To: i % 8}
	}
	if _, err := d.Commit(directory.Batch{Set: set}); err != nil {
		b.Fatal(err)
	}
	// Retire a tenth so lookups also exercise the cold tier's fallthrough.
	retire := make([]graph.VertexID, 0, n/10)
	for i := 0; i < n; i += 10 {
		retire = append(retire, graph.VertexID(i))
	}
	if _, err := d.Commit(directory.Batch{Retire: retire}); err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkDirectoryLookup measures the serving path of the placement
// directory: lock-free lookups against a pinned snapshot and through a
// fresh Current() load per lookup, fanned across GOMAXPROCS goroutines
// (RunParallel). This is the per-request cost a front end pays to answer
// "which shard owns account X?"; it runs in the CI bench smoke so the
// serving path is tracked alongside repartition cost.
func BenchmarkDirectoryLookup(b *testing.B) {
	const n = 1 << 16
	d := benchDirectory(b, n)
	for _, mode := range []struct {
		name   string
		pinned bool
	}{{"pinned-snapshot", true}, {"current-per-lookup", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				snap := d.Current()
				state := uint64(0x9e3779b97f4a7c15)
				var sink int
				for pb.Next() {
					state = state*6364136223846793005 + 1442695040888963407
					v := graph.VertexID((state >> 33) % n)
					if mode.pinned {
						s, _ := snap.Lookup(v)
						sink += s
					} else {
						s, _ := d.Current().Lookup(v)
						sink += s
					}
				}
				_ = sink
			})
		})
	}
}

// BenchmarkDirectoryWaveCommit measures the write path: committing a
// repartition's whole move set as one epoch flip, with a concurrent
// reader pinning snapshots throughout (the RCU cost is paid entirely by
// the writer). waves/entry reports the per-move cost of a 1024-move wave
// against a 64k-entry directory.
func BenchmarkDirectoryWaveCommit(b *testing.B) {
	const (
		n        = 1 << 16
		waveSize = 1024
	)
	d := benchDirectory(b, n)
	stop := make(chan struct{})
	go func() { // background reader: the serving traffic waves flip under
		state := uint64(7)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := d.Current()
			for i := 0; i < 128; i++ {
				state = state*6364136223846793005 + 1442695040888963407
				snap.Lookup(graph.VertexID((state >> 33) % n))
			}
		}
	}()
	wave := make([]directory.Move, waveSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range wave {
			wave[j] = directory.Move{
				V:  graph.VertexID((i*waveSize + j*97) % n),
				To: (i + j) % 8,
			}
		}
		if _, err := d.Commit(directory.Batch{Set: wave}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(b.N*waveSize)/b.Elapsed().Seconds(), "moves/s")
	}
}

// BenchmarkWorkloadGeneration measures the synthetic-history generator
// itself (chain + EVM execution throughput).
func BenchmarkWorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gt, err := sim.Generate(workload.Config{
			Seed: int64(i + 1), Scale: 0.0005, BlockInterval: 4 * time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(gt.Records)), "records")
	}
}

// BenchmarkScenarioGeneration measures the open-loop scenario pipeline
// (arrival planning + mix emission + chain execution) on a library
// composition with hot-population skew and contract traffic.
func BenchmarkScenarioGeneration(b *testing.B) {
	sc, err := workload.LookupScenario("diurnal-exchange")
	if err != nil {
		b.Fatal(err)
	}
	sc.Arrival.Duration = 48 * time.Hour
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(i + 1)
		gt, err := sim.GenerateScenario(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(gt.Records)), "records")
	}
}

// cutOf computes the weighted cut fraction of a one-shot partition.
func cutOf(c *graph.CSR, parts []int) float64 {
	var cut, total int64
	for u := int32(0); int(u) < c.N(); u++ {
		adj, w := c.Row(u)
		for p, v := range adj {
			if v <= u {
				continue
			}
			total += w[p]
			if parts[u] != parts[v] {
				cut += w[p]
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cut) / float64(total)
}
